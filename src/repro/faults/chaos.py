"""Chaos-testing harness: randomized fault sweeps with invariant checks.

``python -m repro chaos [--seed N] [--smoke] [-o report.json]`` runs a
deterministic sweep of randomized fault scenarios (plus a fault-free
baseline) across every Table-5 strategy and asserts engine invariants on
each run:

* **Byte conservation** — for every NIC, the bytes it served equal the
  sum over off-node messages of ``nbytes * attempts`` from that node
  (retransmitted bytes consume real injection bandwidth).
* **Monotone times** — every message's transfer start, send-complete
  and delivery times are ordered and never precede the send post.
* **Termination** — every run either completes (all rank programs
  finish) or raises a diagnosable :class:`DeliveryError`; a
  :class:`DeadlockError`/:class:`WatchdogError` or any other crash is a
  violation ("never a hang").
* **Trace transparency** — re-running the identical scenario with the
  Perfetto tracer attached produces a bit-identical outcome fingerprint
  (virtual times compared via ``float.hex``).
* **Correct delivery** — completed exchanges are verified bit-exact
  against the pattern's ground truth.

The whole sweep is a pure function of ``--seed``: two invocations with
the same seed produce byte-identical reports (no timestamps, sorted
keys), which is what the CI ``chaos-smoke`` job asserts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.faults.errors import DeliveryError
from repro.faults.plan import (
    NO_FAULTS,
    DeviceOutage,
    FaultPlan,
    LinkDegradation,
    MessageLoss,
    Pacing,
    RetryPolicy,
    Straggler,
)
from repro.sim.engine import DeadlockError, SimulationError, WatchdogError

#: sweep shape: 2 Lassen-like nodes, 4 GPU owners + 2 helpers per node
NUM_NODES = 2
PPN = 6
NUM_GPUS = 8
#: element counts covering the short / eager / rendezvous protocols
#: (itemsize 8: 128 B, 2 KiB, 16 KiB)
MSG_ELEMS = (16, 256, 2048)
#: watchdog budgets — generous for these tiny jobs; a hang trips them
MAX_EVENTS = 2_000_000
MAX_WALL_SECONDS = 60.0


def build_scenario(index: int, rng: np.random.Generator) -> FaultPlan:
    """One randomized fault plan (index 0 is the fault-free baseline).

    All randomness comes from ``rng``, so a sweep is a pure function of
    its seed.  Degradation windows are drawn cursor-style (each window
    starts at or after the previous one ends), which satisfies the
    sorted/non-overlapping contract of
    :meth:`~repro.sim.resources.BandwidthResource.set_degradation`.
    """
    if index == 0:
        return NO_FAULTS
    degradations = []
    cursor = float(rng.uniform(0.0, 2e-5))
    for _ in range(int(rng.integers(0, 3))):
        width = float(rng.uniform(1e-5, 2e-4))
        degradations.append(LinkDegradation(
            t0=cursor, t1=cursor + width,
            factor=float(rng.uniform(0.05, 0.8)),
            node=int(rng.integers(0, NUM_NODES)) if rng.random() < 0.5
            else None))
        cursor += width + float(rng.uniform(1e-6, 5e-5))
    stragglers = []
    for rank in sorted(rng.choice(NUM_NODES * PPN,
                                  size=int(rng.integers(0, 3)),
                                  replace=False).tolist()):
        stragglers.append(Straggler(rank=int(rank),
                                    factor=float(rng.uniform(1.5, 4.0))))
    loss = None
    if rng.random() < 0.7:
        loss = MessageLoss(prob=float(rng.uniform(0.05, 0.3)))
    outages = []
    if rng.random() < 0.5:
        outages.append(DeviceOutage())
    retry = RetryPolicy(timeout=2e-4, backoff=1e-4, backoff_cap=1e-3,
                        max_retries=int(rng.integers(2, 6)))
    pacing = None
    if rng.random() < 0.3:
        pacing = Pacing(rate=float(rng.uniform(1e9, 1e10)),
                        burst=float(rng.uniform(4096, 65536)))
    return FaultPlan(degradations=degradations, stragglers=stragglers,
                     loss=loss, outages=outages, retry=retry,
                     pacing=pacing, seed=index)


def _check_conservation(job, violations: List[str], where: str) -> None:
    """Every NIC's bytes_served == sum(nbytes * attempts) injected into it."""
    from repro.machine.locality import Locality, TransportKind

    expected: Dict[tuple, float] = {}
    for t in job.transport.trace_log:
        if t.locality is not Locality.OFF_NODE:
            continue
        if job.transport.nic_of(0, t.kind) is None:
            continue
        node = job.layout.placement(t.src).node
        key = (node, t.kind)
        expected[key] = expected.get(key, 0.0) + t.nbytes * t.attempts
    for node in range(job.layout.num_nodes):
        for kind in (TransportKind.CPU, TransportKind.GPU):
            nic = job.transport.nic_of(node, kind)
            if nic is None:
                continue
            want = expected.get((node, kind), 0.0)
            if nic.bytes_served != want:
                violations.append(
                    f"{where}: byte conservation broken on {kind.name} NIC "
                    f"of node {node}: served {nic.bytes_served}, "
                    f"messages injected {want}")


def _check_monotone(job, violations: List[str], where: str) -> None:
    for t in job.transport.trace_log:
        ok = (t.t_send <= t.t_start
              and t.t_start <= t.send_complete
              and t.t_start <= t.delivery)
        if not ok:
            violations.append(
                f"{where}: non-monotone message times "
                f"{t.src}->{t.dest}: send={t.t_send} start={t.t_start} "
                f"complete={t.send_complete} delivery={t.delivery}")
            return  # one example per run is enough


def _run_once(machine, plan: FaultPlan, pattern, strategy,
              tracer: bool, violations: List[str],
              where: str) -> Dict[str, Any]:
    """One (scenario, strategy) run; returns its outcome fingerprint."""
    from repro.core.base import default_data, run_exchange, verify_exchange
    from repro.mpi.job import SimJob

    job = SimJob(machine, num_nodes=NUM_NODES, ppn=PPN, seed=0,
                 faults=plan, trace=True, tracer=True if tracer else None,
                 max_events=MAX_EVENTS, max_wall_seconds=MAX_WALL_SECONDS)
    outcome: Dict[str, Any] = {}
    try:
        result = run_exchange(job, strategy, pattern)
    except DeliveryError as exc:
        outcome["outcome"] = "delivery-error"
        outcome["error"] = str(exc)
    except (DeadlockError, WatchdogError) as exc:
        outcome["outcome"] = "hang"
        outcome["error"] = f"{type(exc).__name__}: {exc}"
        violations.append(f"{where}: hang ({type(exc).__name__}: {exc})")
    except (SimulationError, AssertionError) as exc:
        outcome["outcome"] = "crash"
        outcome["error"] = f"{type(exc).__name__}: {exc}"
        violations.append(f"{where}: crash ({type(exc).__name__}: {exc})")
    else:
        outcome["outcome"] = "ok"
        outcome["comm_time_hex"] = result.comm_time.hex()
        try:
            verify_exchange(result, pattern,
                            default_data(pattern, job.layout))
        except AssertionError as exc:
            violations.append(f"{where}: corrupt delivery ({exc})")
        blocked = job.sim.blocked_labels()
        if blocked:
            violations.append(
                f"{where}: processes still blocked after a completed "
                f"run: {blocked}")
    stats = job.transport.stats
    outcome["elapsed_hex"] = float(job.sim.now).hex()
    outcome["messages"] = stats.messages
    outcome["retries"] = stats.retries
    outcome["timeouts"] = stats.timeouts
    outcome["gave_up"] = stats.gave_up
    outcome["degraded"] = stats.degraded
    _check_conservation(job, violations, where)
    _check_monotone(job, violations, where)
    if job.sim.now < 0:
        violations.append(f"{where}: virtual clock went negative")
    return outcome


def run_chaos(seed: int = 0, smoke: bool = False) -> Dict[str, Any]:
    """Run the sweep; returns the (JSON-serializable) report."""
    from repro.core.pattern import CommPattern
    from repro.core.selector import all_strategies
    from repro.machine.presets import lassen

    machine = lassen()
    n_scenarios = 3 if smoke else 6
    rng = np.random.default_rng(seed)
    violations: List[str] = []
    scenarios = []
    runs = ok_runs = delivery_errors = 0
    for index in range(n_scenarios):
        plan = build_scenario(index, rng)
        pattern = CommPattern.random(
            num_gpus=NUM_GPUS, local_n=4096, messages_per_gpu=3,
            msg_elems=MSG_ELEMS[index % len(MSG_ELEMS)],
            seed=seed * 1000 + index)
        results: Dict[str, Any] = {}
        for strategy in all_strategies():
            where = f"scenario {index} / {strategy.label}"
            runs += 1
            plain = _run_once(machine, plan, pattern, strategy,
                              tracer=False, violations=violations,
                              where=where)
            traced = _run_once(machine, plan, pattern, strategy,
                               tracer=True, violations=violations,
                               where=f"{where} [traced]")
            if plain != traced:
                violations.append(
                    f"{where}: tracing changed the outcome fingerprint "
                    f"(untraced {plain} != traced {traced})")
            if plain["outcome"] == "ok":
                ok_runs += 1
            elif plain["outcome"] == "delivery-error":
                delivery_errors += 1
            results[strategy.label] = plain
        scenarios.append({
            "index": index,
            "plan": plan.describe(),
            "msg_elems": MSG_ELEMS[index % len(MSG_ELEMS)],
            "results": results,
        })
    return {
        "seed": seed,
        "smoke": smoke,
        "scenarios": scenarios,
        "violations": violations,
        "ok": not violations,
        "summary": {
            "runs": runs,
            "ok": ok_runs,
            "delivery_errors": delivery_errors,
            "violations": len(violations),
        },
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Randomized fault-injection sweep with engine "
                    "invariant checks.")
    parser.add_argument("--seed", type=int, default=0,
                        help="sweep seed (the whole report is a pure "
                             "function of it)")
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep (3 scenarios instead of 6)")
    parser.add_argument("-o", "--output", default=None,
                        help="write the JSON report here (default stdout)")
    args = parser.parse_args(argv)
    report = run_chaos(seed=args.seed, smoke=args.smoke)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    summary = report["summary"]
    print(f"chaos: {summary['runs']} runs, {summary['ok']} ok, "
          f"{summary['delivery_errors']} delivery errors, "
          f"{summary['violations']} invariant violations",
          file=sys.stderr)
    for v in report["violations"]:
        print(f"  VIOLATION: {v}", file=sys.stderr)
    return 0 if report["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
