"""Chaos-testing harness: randomized fault sweeps with invariant checks.

``python -m repro chaos [--seed N] [--smoke] [-o report.json]`` runs a
deterministic sweep of randomized fault scenarios (plus a fault-free
baseline) across every Table-5 strategy and asserts engine invariants on
each run:

* **Byte conservation** — for every NIC, the bytes it served equal the
  sum over off-node messages of ``nbytes * attempts`` from that node
  (retransmitted bytes consume real injection bandwidth).
* **Monotone times** — every message's transfer start, send-complete
  and delivery times are ordered and never precede the send post.
* **Termination** — every run either completes (all rank programs
  finish) or raises a diagnosable :class:`DeliveryError`; a
  :class:`DeadlockError`/:class:`WatchdogError` or any other crash is a
  violation ("never a hang").
* **Trace transparency** — re-running the identical scenario with the
  Perfetto tracer attached produces a bit-identical outcome fingerprint
  (virtual times compared via ``float.hex``).
* **Correct delivery** — completed exchanges are verified bit-exact
  against the pattern's ground truth.

The whole sweep is a pure function of ``--seed``: two invocations with
the same seed produce byte-identical reports (no timestamps, sorted
keys), which is what the CI ``chaos-smoke`` job asserts — **at any
worker count**.  ``--jobs N`` fans the (scenario, strategy) shards out
over a process pool via :func:`repro.par.sweep_map`; each shard is a
pure function of ``(seed, smoke, scenario index, strategy label)``, and
the ordered gather reassembles violations, outcomes and merged metrics
in serial order, so parallel reports are byte-identical to serial ones.
``--cache`` / ``--cache-dir`` enable the content-addressed result cache
(:class:`repro.par.ResultCache`): a re-run with unchanged inputs skips
completed shards entirely.

**Process-level chaos** (``--proc-faults [SPEC]``) turns the sweep into
its own test subject: a seeded :class:`repro.faults.ProcFaultPlan`
makes worker processes crash (``os._exit``), hang past their deadline,
or raise on schedule, and the supervised executor (see
:mod:`repro.par.executor`) must recover — respawning pools, retrying
under ``--max-retries``/``--task-timeout``, and quarantining at most
the poisoned cells (reported with ``"outcome": "quarantined"``).
Because shards are pure, every *surviving* cell is byte-identical to a
fault-free serial run; with only transient faults the whole report is.
``--resume`` (implies ``--cache``) re-executes only the shards a killed
run didn't checkpoint.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.errors import DeliveryError
from repro.faults.procfault import ProcFaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.par.cache import ResultCache, cache_key, default_cache_dir
from repro.par.executor import (
    DEFAULT_SWEEP_RETRY,
    SweepPolicy,
    SweepStats,
    resolve_jobs,
    sweep_map,
)
from repro.faults.plan import (
    NO_FAULTS,
    DeviceOutage,
    FaultPlan,
    LinkDegradation,
    MessageLoss,
    Pacing,
    RetryPolicy,
    Straggler,
)
from repro.sim.engine import DeadlockError, SimulationError, WatchdogError

#: sweep shape: 2 Lassen-like nodes, 4 GPU owners + 2 helpers per node
NUM_NODES = 2
PPN = 6
NUM_GPUS = 8
#: element counts covering the short / eager / rendezvous protocols
#: (itemsize 8: 128 B, 2 KiB, 16 KiB)
MSG_ELEMS = (16, 256, 2048)
#: watchdog budgets — generous for these tiny jobs; a hang trips them
MAX_EVENTS = 2_000_000
MAX_WALL_SECONDS = 60.0


def build_scenario(index: int, rng: np.random.Generator) -> FaultPlan:
    """One randomized fault plan (index 0 is the fault-free baseline).

    All randomness comes from ``rng``, so a sweep is a pure function of
    its seed.  Degradation windows are drawn cursor-style (each window
    starts at or after the previous one ends), which satisfies the
    sorted/non-overlapping contract of
    :meth:`~repro.sim.resources.BandwidthResource.set_degradation`.
    """
    if index == 0:
        return NO_FAULTS
    degradations = []
    cursor = float(rng.uniform(0.0, 2e-5))
    for _ in range(int(rng.integers(0, 3))):
        width = float(rng.uniform(1e-5, 2e-4))
        degradations.append(LinkDegradation(
            t0=cursor, t1=cursor + width,
            factor=float(rng.uniform(0.05, 0.8)),
            node=int(rng.integers(0, NUM_NODES)) if rng.random() < 0.5
            else None))
        cursor += width + float(rng.uniform(1e-6, 5e-5))
    stragglers = []
    for rank in sorted(rng.choice(NUM_NODES * PPN,
                                  size=int(rng.integers(0, 3)),
                                  replace=False).tolist()):
        stragglers.append(Straggler(rank=int(rank),
                                    factor=float(rng.uniform(1.5, 4.0))))
    loss = None
    if rng.random() < 0.7:
        loss = MessageLoss(prob=float(rng.uniform(0.05, 0.3)))
    outages = []
    if rng.random() < 0.5:
        outages.append(DeviceOutage())
    retry = RetryPolicy(timeout=2e-4, backoff=1e-4, backoff_cap=1e-3,
                        max_retries=int(rng.integers(2, 6)))
    pacing = None
    if rng.random() < 0.3:
        pacing = Pacing(rate=float(rng.uniform(1e9, 1e10)),
                        burst=float(rng.uniform(4096, 65536)))
    return FaultPlan(degradations=degradations, stragglers=stragglers,
                     loss=loss, outages=outages, retry=retry,
                     pacing=pacing, seed=index)


def build_scenarios(seed: int, n_scenarios: int) -> List[FaultPlan]:
    """All fault plans of one sweep, in index order.

    One shared generator is consumed across indices (scenario ``i``
    depends on the draws of scenarios ``0..i-1``), so workers rebuild
    the full list and pick their index — cheap, and bit-identical to
    the serial construction.
    """
    rng = np.random.default_rng(seed)
    return [build_scenario(index, rng) for index in range(n_scenarios)]


def _scenario_pattern(seed: int, index: int):
    """The randomized exchange pattern of one scenario (pure function)."""
    from repro.core.pattern import CommPattern

    return CommPattern.random(
        num_gpus=NUM_GPUS, local_n=4096, messages_per_gpu=3,
        msg_elems=MSG_ELEMS[index % len(MSG_ELEMS)],
        seed=seed * 1000 + index)


def _check_conservation(job, violations: List[str], where: str) -> None:
    """Every NIC's bytes_served == sum(nbytes * attempts) injected into it."""
    from repro.machine.locality import Locality, TransportKind

    expected: Dict[tuple, float] = {}
    for t in job.transport.trace_log:
        if t.locality is not Locality.OFF_NODE:
            continue
        if job.transport.nic_of(0, t.kind) is None:
            continue
        node = job.layout.placement(t.src).node
        key = (node, t.kind)
        expected[key] = expected.get(key, 0.0) + t.nbytes * t.attempts
    for node in range(job.layout.num_nodes):
        for kind in (TransportKind.CPU, TransportKind.GPU):
            nic = job.transport.nic_of(node, kind)
            if nic is None:
                continue
            want = expected.get((node, kind), 0.0)
            if nic.bytes_served != want:
                violations.append(
                    f"{where}: byte conservation broken on {kind.name} NIC "
                    f"of node {node}: served {nic.bytes_served}, "
                    f"messages injected {want}")


def _check_monotone(job, violations: List[str], where: str) -> None:
    for t in job.transport.trace_log:
        ok = (t.t_send <= t.t_start
              and t.t_start <= t.send_complete
              and t.t_start <= t.delivery)
        if not ok:
            violations.append(
                f"{where}: non-monotone message times "
                f"{t.src}->{t.dest}: send={t.t_send} start={t.t_start} "
                f"complete={t.send_complete} delivery={t.delivery}")
            return  # one example per run is enough


def _phase_profile(job) -> Dict[str, Dict[str, Any]]:
    """Aggregate a traced job's strategy-phase spans by phase name.

    ``{phase: {"count": spans, "total_s": summed virtual seconds}}`` —
    virtual times are deterministic, so the profile is too (and safe to
    put in the deterministic section of the run ledger / report).
    """
    profile: Dict[str, Dict[str, Any]] = {}
    if job.tracer is None:
        return profile
    for span in job.tracer.spans:
        if span.cat != "phase":
            continue
        cell = profile.setdefault(span.name, {"count": 0, "total_s": 0.0})
        cell["count"] += 1
        cell["total_s"] += span.t1 - span.t0
    return profile


def _run_once(machine, plan: FaultPlan, pattern, strategy,
              tracer: bool, violations: List[str],
              where: str
              ) -> Tuple[Dict[str, Any], Dict[str, Any], Dict[str, Any]]:
    """One (scenario, strategy) run.

    Returns ``(outcome fingerprint, metrics snapshot, phase profile)``
    — the snapshot is the job's :meth:`~repro.mpi.job.SimJob.metrics`,
    merged across shards into the report's aggregate ``metrics``
    section; the phase profile (:func:`_phase_profile`) is non-empty
    only for the traced arm.
    """
    from repro.core.base import default_data, run_exchange, verify_exchange
    from repro.mpi.job import SimJob

    job = SimJob(machine, num_nodes=NUM_NODES, ppn=PPN, seed=0,
                 faults=plan, trace=True, tracer=True if tracer else None,
                 max_events=MAX_EVENTS, max_wall_seconds=MAX_WALL_SECONDS)
    outcome: Dict[str, Any] = {}
    try:
        result = run_exchange(job, strategy, pattern)
    except DeliveryError as exc:
        outcome["outcome"] = "delivery-error"
        outcome["error"] = str(exc)
    except (DeadlockError, WatchdogError) as exc:
        outcome["outcome"] = "hang"
        outcome["error"] = f"{type(exc).__name__}: {exc}"
        violations.append(f"{where}: hang ({type(exc).__name__}: {exc})")
    except (SimulationError, AssertionError) as exc:
        outcome["outcome"] = "crash"
        outcome["error"] = f"{type(exc).__name__}: {exc}"
        violations.append(f"{where}: crash ({type(exc).__name__}: {exc})")
    else:
        outcome["outcome"] = "ok"
        outcome["comm_time_hex"] = result.comm_time.hex()
        try:
            verify_exchange(result, pattern,
                            default_data(pattern, job.layout))
        except AssertionError as exc:
            violations.append(f"{where}: corrupt delivery ({exc})")
        blocked = job.sim.blocked_labels()
        if blocked:
            violations.append(
                f"{where}: processes still blocked after a completed "
                f"run: {blocked}")
    stats = job.transport.stats
    outcome["elapsed_hex"] = float(job.sim.now).hex()
    outcome["messages"] = stats.messages
    outcome["retries"] = stats.retries
    outcome["timeouts"] = stats.timeouts
    outcome["gave_up"] = stats.gave_up
    outcome["degraded"] = stats.degraded
    _check_conservation(job, violations, where)
    _check_monotone(job, violations, where)
    if job.sim.now < 0:
        violations.append(f"{where}: virtual clock went negative")
    return outcome, job.metrics(), _phase_profile(job)


def run_chaos_shard(spec: Tuple) -> Dict[str, Any]:
    """One sweep shard: both runs (plain + traced) of one cell.

    ``spec = (seed, smoke, scenario index, strategy label[, machine
    preset name])`` — tiny and picklable, so shards fan out over any
    start method.  Everything else (machine, plan, pattern, strategy
    instance) is rebuilt deterministically inside the worker.  Returns
    the cell's outcome, its local violations (in serial order), the
    plain run's metrics snapshot and the traced run's per-phase
    virtual-time profile (attached *after* the plain-vs-traced
    fingerprint comparison, so trace transparency is still checked on
    the bare outcome).
    """
    from repro.core.selector import strategy_by_name
    from repro.machine.presets import resolve_machine

    seed, smoke, index, label = spec[:4]
    machine = resolve_machine(spec[4] if len(spec) > 4 else "lassen")
    plan = build_scenarios(seed, 3 if smoke else 6)[index]
    pattern = _scenario_pattern(seed, index)
    strategy = strategy_by_name(label)
    violations: List[str] = []
    where = f"scenario {index} / {label}"
    plain, metrics, _ = _run_once(machine, plan, pattern, strategy,
                                  tracer=False, violations=violations,
                                  where=where)
    traced, _, phases = _run_once(machine, plan, pattern, strategy,
                                  tracer=True, violations=violations,
                                  where=f"{where} [traced]")
    if plain != traced:
        violations.append(
            f"{where}: tracing changed the outcome fingerprint "
            f"(untraced {plain} != traced {traced})")
    return {"outcome": plain, "violations": violations, "metrics": metrics,
            "phases": phases}


def _shard_key(spec: Tuple, machine,
               plan: FaultPlan, pattern_fp: str) -> str:
    """Content hash of one shard's inputs (see :func:`repro.par.cache_key`).

    ``machine`` is the resolved :class:`MachineSpec`; every field of it
    (including its name) enters the hash, so otherwise-identical sweeps
    on different machines can never share cache entries.
    """
    seed, smoke, index, label = spec[:4]
    return cache_key("chaos-shard", machine=machine, plan=plan,
                     pattern=pattern_fp, strategy=label, seed=seed,
                     smoke=smoke, index=index,
                     shape=(NUM_NODES, PPN, NUM_GPUS),
                     budgets=(MAX_EVENTS, MAX_WALL_SECONDS))


def run_chaos(seed: int = 0, smoke: bool = False,
              jobs: Optional[int] = None,
              cache: Optional[ResultCache] = None,
              machine: str = "lassen",
              stats: Optional[SweepStats] = None,
              policy: Optional[SweepPolicy] = None,
              journal_dir: Optional[str] = None,
              resume: bool = False,
              proc_faults: Optional[ProcFaultPlan] = None
              ) -> Dict[str, Any]:
    """Run the sweep; returns the (JSON-serializable) report.

    ``jobs`` fans shards out over a process pool (default:
    ``$REPRO_JOBS`` or serial); ``cache`` skips shards whose content
    hash already has a stored result.  ``machine`` names any preset in
    :data:`repro.machine.PRESETS` (workers rebuild it from the name).
    ``stats`` (a :class:`repro.par.SweepStats`) collects the sweep's
    fleet telemetry in place for the run ledger.  The report is
    byte-identical across worker counts and cache states.

    ``policy`` / ``journal_dir`` / ``resume`` / ``proc_faults`` opt the
    sweep into supervised execution (see
    :func:`repro.par.sweep_map`).  The default supervised policy is
    non-strict: a poison cell is *quarantined* — reported with
    ``"outcome": "quarantined"`` and counted in
    ``summary["quarantined"]`` — rather than aborting the sweep, and
    every surviving cell stays byte-identical to a fault-free serial
    run.  The injected plan itself is deliberately **not** embedded in
    the report: with only transient faults the recovered report is
    byte-identical to the fault-free one, which is the whole point.
    """
    from repro.core.selector import all_strategies
    from repro.machine.presets import resolve_machine

    spec = resolve_machine(machine)
    machine_name = spec.name
    n_scenarios = 3 if smoke else 6
    plans = build_scenarios(seed, n_scenarios)
    labels = [s.label for s in all_strategies()]
    tasks = [(seed, smoke, index, label, machine_name)
             for index in range(n_scenarios) for label in labels]
    key_fn = None
    if cache is not None:
        pattern_fps = {index: _scenario_pattern(seed, index).fingerprint()
                       for index in range(n_scenarios)}

        def key_fn(task):
            return _shard_key(task, spec, plans[task[2]],
                              pattern_fps[task[2]])

    supervised = (policy is not None or journal_dir is not None
                  or resume or proc_faults is not None)
    if supervised:
        if stats is None:
            stats = SweepStats()
        if policy is None:
            policy = SweepPolicy(strict=False)
        shards = sweep_map(run_chaos_shard, tasks, jobs=jobs,
                           cache=cache, key_fn=key_fn, stats=stats,
                           policy=policy, journal_dir=journal_dir,
                           resume=resume, proc_faults=proc_faults)
    else:
        shards = sweep_map(run_chaos_shard, tasks, jobs=jobs,
                           cache=cache, key_fn=key_fn, stats=stats)
    quarantined_by_index = {
        q["index"]: q
        for q in (stats.quarantined if stats is not None else ())}

    violations: List[str] = []
    merged = MetricsRegistry()
    scenarios = []
    runs = ok_runs = delivery_errors = quarantined = 0
    task_index = 0
    for index in range(n_scenarios):
        results: Dict[str, Any] = {}
        for label in labels:
            shard = shards[task_index]
            runs += 1
            if shard is None:
                # the supervised executor gave up on this cell: report
                # it explicitly (stable fields only — no run counts or
                # wall facts — so the report stays deterministic)
                q = quarantined_by_index.get(task_index, {})
                quarantined += 1
                results[label] = {
                    "outcome": "quarantined",
                    "reason": q.get("reason", "unknown"),
                    "error": q.get("error", ""),
                }
                task_index += 1
                continue
            violations.extend(shard["violations"])
            merged.merge(shard["metrics"])
            outcome = shard["outcome"]
            if outcome["outcome"] == "ok":
                ok_runs += 1
            elif outcome["outcome"] == "delivery-error":
                delivery_errors += 1
            results[label] = dict(outcome, phases=shard["phases"])
            task_index += 1
        scenarios.append({
            "index": index,
            "plan": plans[index].describe(),
            "msg_elems": MSG_ELEMS[index % len(MSG_ELEMS)],
            "results": results,
        })
    return {
        "seed": seed,
        "smoke": smoke,
        "machine": machine_name,
        "scenarios": scenarios,
        "violations": violations,
        "ok": not violations,
        "metrics": merged.to_dict(),
        "summary": {
            "runs": runs,
            "ok": ok_runs,
            "delivery_errors": delivery_errors,
            "quarantined": quarantined,
            "violations": len(violations),
        },
    }


def write_chaos_ledger(ledger, report: Dict[str, Any],
                       stats: Optional[SweepStats] = None,
                       cache: Optional[ResultCache] = None) -> None:
    """Emit a chaos report into a :class:`repro.obs.RunLedger`.

    One ``cell`` record per (scenario, strategy) — outcome, delivered
    comm time (decoded from the report's ``comm_time_hex``) and the
    per-phase virtual-time profile — plus the merged metrics snapshot,
    the sweep's fleet telemetry and the result-cache attribution.  All
    cell fields are deterministic; execution-shape facts land in the
    volatile/envelope sections via :meth:`RunLedger.sweep`.
    """
    for scenario in report["scenarios"]:
        for label, cell in scenario["results"].items():
            fields: Dict[str, Any] = {
                k: cell[k] for k in ("outcome", "messages", "retries",
                                     "timeouts", "gave_up", "degraded")
                if k in cell
            }
            if "comm_time_hex" in cell:
                fields["time_s"] = float.fromhex(cell["comm_time_hex"])
            if cell.get("phases"):
                fields["phases"] = cell["phases"]
            ledger.event("cell", scenario=scenario["index"],
                         strategy=label, **fields)
    ledger.metrics(report["metrics"])
    if stats is not None:
        ledger.sweep(stats)
    if cache is not None:
        ledger.cache_events(cache)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Randomized fault-injection sweep with engine "
                    "invariant checks.")
    parser.add_argument("--seed", type=int, default=0,
                        help="sweep seed (the whole report is a pure "
                             "function of it)")
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep (3 scenarios instead of 6)")
    parser.add_argument("--machine", default="lassen", metavar="PRESET",
                        help="machine preset to sweep on (see "
                             "`python -m repro info`; default lassen)")
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="worker processes for the sweep (default: "
                             "$REPRO_JOBS or serial); the report is "
                             "byte-identical at any value")
    parser.add_argument("--cache", action="store_true",
                        help="cache shard results on disk under "
                             "$REPRO_CACHE_DIR or .repro-cache/")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache shard results under DIR (implies "
                             "--cache)")
    parser.add_argument("--proc-faults", nargs="?", metavar="SPEC",
                        default=None, const="crash=1,hang=1,poison=1",
                        help="inject process-level faults into the sweep "
                             "workers: comma-separated kind[=count] over "
                             "crash/hang/raise (transient) and poison "
                             "(persistent raise); bare flag means "
                             "'crash=1,hang=1,poison=1'.  Requires "
                             "--jobs >= 2.  Sampled from --seed.")
    parser.add_argument("--max-retries", type=int, default=None,
                        metavar="N",
                        help="supervised execution: retries before a "
                             "failing shard is quarantined (default "
                             f"{DEFAULT_SWEEP_RETRY.max_retries}); "
                             "giving this flag opts into supervision")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="supervised execution: per-shard wall-clock "
                             "budget enforced by the watchdog (default: "
                             "no deadline; 5.0 when --proc-faults "
                             "injects hangs); giving this flag opts "
                             "into supervision")
    parser.add_argument("--resume", action="store_true",
                        help="resume a killed sweep: restore completed "
                             "shards from the result cache + sweep "
                             "journal and re-execute only the rest "
                             "(implies --cache)")
    parser.add_argument("-o", "--output", default=None,
                        help="write the JSON report here (default stdout)")
    parser.add_argument("--ledger", default=None, metavar="PATH",
                        help="write a JSONL run ledger here (consumed by "
                             "`python -m repro obs`)")
    parser.add_argument("--profile", default=None, metavar="PATH",
                        help="sample the host stack during the sweep and "
                             "write collapsed stacks (flamegraph.pl "
                             "format) here")
    args = parser.parse_args(argv)
    cache = None
    if args.cache or args.cache_dir or args.resume:
        cache = ResultCache(directory=args.cache_dir or default_cache_dir())

    supervised = (args.proc_faults is not None or args.resume
                  or args.max_retries is not None
                  or args.task_timeout is not None)
    policy = None
    journal_dir = None
    plan = None
    if supervised:
        from repro.core.selector import all_strategies
        from repro.faults.procfault import parse_proc_fault_spec

        task_timeout = args.task_timeout
        if args.proc_faults is not None:
            try:
                counts = parse_proc_fault_spec(args.proc_faults)
            except ValueError as exc:
                parser.error(str(exc))
            if resolve_jobs(args.jobs) < 2:
                parser.error("--proc-faults needs --jobs >= 2: injected "
                             "crashes/hangs must hit *worker* processes, "
                             "not the supervising one")
            n_tasks = ((3 if args.smoke else 6)
                       * len(all_strategies()))
            if counts["hangs"] and task_timeout is None:
                task_timeout = 5.0  # a hang needs a deadline to trip
            try:
                plan = ProcFaultPlan.sample(args.seed, n_tasks, **counts)
            except ValueError as exc:
                parser.error(str(exc))
        retry = DEFAULT_SWEEP_RETRY
        if args.max_retries is not None:
            retry = RetryPolicy(timeout=retry.timeout,
                                backoff=retry.backoff,
                                backoff_cap=retry.backoff_cap,
                                max_retries=args.max_retries)
        policy = SweepPolicy(task_timeout=task_timeout, retry=retry,
                             seed=args.seed, strict=False)
        if cache is not None:
            journal_dir = cache.directory

    stats = SweepStats()
    profiler = None
    if args.profile:
        from repro.obs.profile import SamplingProfiler

        profiler = SamplingProfiler().start()
    try:
        report = run_chaos(seed=args.seed, smoke=args.smoke, jobs=args.jobs,
                           cache=cache, machine=args.machine, stats=stats,
                           policy=policy, journal_dir=journal_dir,
                           resume=args.resume, proc_faults=plan)
    finally:
        if profiler is not None:
            profiler.stop()
    if profiler is not None:
        n = profiler.write_collapsed(args.profile)
        print(f"profile: wrote {args.profile} ({n} stacks, "
              f"{profiler.total_samples} samples)", file=sys.stderr)
    if args.ledger:
        from repro.obs.ledger import RunLedger

        ledger_args = {"seed": args.seed, "smoke": args.smoke,
                       "machine": report["machine"]}
        if args.proc_faults is not None:
            # the injected plan is a semantic input: a faulted run is a
            # different experiment than an unfaulted one
            ledger_args["proc_faults"] = args.proc_faults
        ledger = RunLedger(args.ledger, "chaos", ledger_args,
                           machine=report["machine"])
        write_chaos_ledger(ledger, report, stats=stats, cache=cache)
        if profiler is not None:
            for stack, count in profiler.stacks():
                ledger.event("profile_stack", volatile=True,
                             stack=stack, count=count)
        ledger.finish("ok" if report["ok"] else "violations",
                      violations=len(report["violations"]))
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    summary = report["summary"]
    print(f"chaos: {summary['runs']} runs, {summary['ok']} ok, "
          f"{summary['delivery_errors']} delivery errors, "
          f"{summary['quarantined']} quarantined, "
          f"{summary['violations']} invariant violations",
          file=sys.stderr)
    if supervised:
        print(f"chaos: supervised sweep — {stats.retried} retries, "
              f"{stats.respawns} pool respawns, {stats.resumed} shards "
              f"resumed, {len(stats.quarantined)} quarantined"
              + (f"; injected {plan.describe()['faults']}"
                 if plan is not None and plan.active else ""),
              file=sys.stderr)
    for v in report["violations"]:
        print(f"  VIOLATION: {v}", file=sys.stderr)
    return 0 if report["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
