"""Fault-injection error types.

:class:`DeliveryError` subclasses the engine's
:class:`~repro.sim.engine.SimulationError` so ``Simulator.run`` re-raises
it directly (unwrapped) when a rank's program dies on an undeliverable
message — exhausted retransmits surface as a diagnosable exception,
never a hang.
"""

from __future__ import annotations

from repro.sim.engine import SimulationError


class DeliveryError(SimulationError):
    """A message exhausted its retransmit budget and was dropped.

    Carries the failed message's envelope so chaos reports and callers
    can attribute the loss: world ranks ``src``/``dest``, payload size,
    the resolved ``protocol`` and ``locality``, the number of transfer
    ``attempts`` made, and the virtual time ``t_fail`` the sender gave
    up.
    """

    def __init__(self, src: int, dest: int, nbytes: int, protocol,
                 locality, attempts: int, t_fail: float) -> None:
        self.src = src
        self.dest = dest
        self.nbytes = nbytes
        self.protocol = protocol
        self.locality = locality
        self.attempts = attempts
        self.t_fail = t_fail
        super().__init__(
            f"message {src} -> {dest} ({nbytes} B, {protocol.name}/"
            f"{locality.name}) undeliverable after {attempts} attempt(s); "
            f"gave up at t={t_fail:g}"
        )
