"""Deterministic fault plans: pure data + seeded streams.

A :class:`FaultPlan` describes *what goes wrong* in a simulated run —
link-degradation windows, straggler ranks, probabilistic message loss,
GPU/copy-engine outages, and optional injection pacing — without any
mutable state.  Like :class:`~repro.sim.noise.NoiseModel`, a plan is
fork-able: :meth:`FaultPlan.fork` derives an independent, reproducible
sub-plan per run via ``numpy`` seed-sequence spawning, so two jobs
constructed with the same plan replay identical fault sequences.

The default :data:`NO_FAULTS` plan is inert: the transport caches one
boolean and takes the exact pre-fault fast path, keeping every golden
timing bit-identical.

Fault-stream isolation: plans draw from
``SeedSequence(entropy=seed, spawn_key=(0xFA, *forks))`` — the ``0xFA``
prefix keeps fault streams disjoint from the noise streams (which spawn
on the bare run index), even when a job uses one seed for both.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

_INF = float("inf")


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ValueError(message)


def _finite_nonneg(owner: str, name: str, value: float) -> None:
    # ``not (v >= 0)`` is NaN-safe: NaN fails every comparison.
    _require(isinstance(value, (int, float)) and not isinstance(value, bool)
             and value >= 0 and not math.isnan(value),
             f"{owner}.{name} must be a non-negative number, got {value!r}")


@dataclass(frozen=True)
class LinkDegradation:
    """Droop a node's NIC injection rate to ``factor * rate`` over
    ``[t0, t1)``.  ``node=None`` degrades every node's NIC."""

    t0: float
    t1: float
    factor: float
    node: Optional[int] = None

    def __post_init__(self) -> None:
        _finite_nonneg("LinkDegradation", "t0", self.t0)
        _require(self.t1 > self.t0,
                 f"LinkDegradation window is empty: [{self.t0!r}, {self.t1!r})")
        _require(0.0 < self.factor <= 1.0 and not math.isnan(self.factor),
                 f"LinkDegradation.factor must be in (0, 1], got {self.factor!r}")


@dataclass(frozen=True)
class Straggler:
    """Multiply every message cost *sent by* ``rank`` by ``factor``."""

    rank: int
    factor: float

    def __post_init__(self) -> None:
        _require(isinstance(self.rank, int) and self.rank >= 0,
                 f"Straggler.rank must be a rank index >= 0, got {self.rank!r}")
        _require(self.factor >= 1.0 and not math.isnan(self.factor)
                 and self.factor != _INF,
                 f"Straggler.factor must be finite and >= 1, got {self.factor!r}")


@dataclass(frozen=True)
class MessageLoss:
    """Lose each off-node message with probability ``prob`` while the
    transfer starts inside ``[t0, t1)``."""

    prob: float
    t0: float = 0.0
    t1: float = _INF

    def __post_init__(self) -> None:
        _require(0.0 <= self.prob <= 1.0 and not math.isnan(self.prob),
                 f"MessageLoss.prob must be in [0, 1], got {self.prob!r}")
        _finite_nonneg("MessageLoss", "t0", self.t0)
        _require(self.t1 > self.t0,
                 f"MessageLoss window is empty: [{self.t0!r}, {self.t1!r})")


@dataclass(frozen=True)
class DeviceOutage:
    """GPU / copy-engine outage over ``[t0, t1)``.

    While active, device-aware strategies degrade to their
    staged-through-host paths (they query the transport's path health at
    program start); device-kind messages forced onto the wire anyway are
    lost on every attempt and surface as
    :class:`~repro.faults.errors.DeliveryError` once retries exhaust.
    ``node=None`` means every node.
    """

    t0: float = 0.0
    t1: float = _INF
    node: Optional[int] = None

    def __post_init__(self) -> None:
        _finite_nonneg("DeviceOutage", "t0", self.t0)
        _require(self.t1 > self.t0,
                 f"DeviceOutage window is empty: [{self.t0!r}, {self.t1!r})")


@dataclass(frozen=True)
class RetryPolicy:
    """Rendezvous-timeout + bounded exponential-backoff retransmit model.

    A lost attempt is detected ``timeout`` seconds after its transfer
    start; retransmit ``k`` waits an additional
    ``min(backoff * 2**k, backoff_cap)``.  After ``max_retries``
    retransmits the transport gives up and the message fails with a
    :class:`~repro.faults.errors.DeliveryError`.
    """

    timeout: float = 2e-4
    backoff: float = 1e-4
    backoff_cap: float = 1e-3
    max_retries: int = 5

    def __post_init__(self) -> None:
        _require(self.timeout > 0 and not math.isnan(self.timeout)
                 and self.timeout != _INF,
                 f"RetryPolicy.timeout must be finite and > 0, got {self.timeout!r}")
        _finite_nonneg("RetryPolicy", "backoff", self.backoff)
        _require(self.backoff_cap >= self.backoff,
                 f"RetryPolicy.backoff_cap must be >= backoff, got {self.backoff_cap!r}")
        _require(isinstance(self.max_retries, int) and self.max_retries >= 0,
                 f"RetryPolicy.max_retries must be an int >= 0, got {self.max_retries!r}")


@dataclass(frozen=True)
class Pacing:
    """Token-bucket pacing of NIC injection during contention windows.

    While a transfer's NIC entry falls inside ``[t0, t1)``, the sending
    node's :class:`~repro.sim.resources.TokenBucket` (``rate`` bytes/s,
    ``burst`` bytes) gates when the payload may enter the byte server.
    """

    rate: float
    burst: float
    t0: float = 0.0
    t1: float = _INF

    def __post_init__(self) -> None:
        _require(self.rate > 0 and not math.isnan(self.rate)
                 and self.rate != _INF,
                 f"Pacing.rate must be finite and > 0, got {self.rate!r}")
        _require(self.burst > 0 and not math.isnan(self.burst)
                 and self.burst != _INF,
                 f"Pacing.burst must be finite and > 0, got {self.burst!r}")
        _finite_nonneg("Pacing", "t0", self.t0)
        _require(self.t1 > self.t0,
                 f"Pacing window is empty: [{self.t0!r}, {self.t1!r})")


@dataclass(frozen=True)
class FaultPlan:
    """One run's worth of injected faults (pure data, fork-able).

    All fields default to "nothing happens"; a default-constructed plan
    is *active* only if at least one fault is configured.  Use
    :data:`NO_FAULTS` rather than ``FaultPlan()`` for the inert default —
    it is a singleton whose :meth:`fork` is the identity, so the
    transport's fault-free fast path stays allocation-free.
    """

    degradations: Tuple[LinkDegradation, ...] = ()
    stragglers: Tuple[Straggler, ...] = ()
    loss: Optional[MessageLoss] = None
    outages: Tuple[DeviceOutage, ...] = ()
    retry: RetryPolicy = RetryPolicy()
    pacing: Optional[Pacing] = None
    seed: int = 0
    #: fork lineage (appended to by :meth:`fork`); part of the RNG key
    spawn_key: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        # Tolerate lists in hand-written plans; store canonical tuples.
        for name in ("degradations", "stragglers", "outages", "spawn_key"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        seen = set()
        for s in self.stragglers:
            _require(s.rank not in seen,
                     f"FaultPlan has duplicate straggler for rank {s.rank}")
            seen.add(s.rank)

    @property
    def active(self) -> bool:
        """Whether this plan injects anything at all."""
        return bool(self.degradations or self.stragglers or self.outages
                    or self.loss is not None or self.pacing is not None)

    def fork(self, stream: int) -> "FaultPlan":
        """An independent, deterministic sub-plan (e.g. one per run)."""
        return dataclasses.replace(
            self, spawn_key=self.spawn_key + (int(stream),))

    def rng(self) -> np.random.Generator:
        """The seeded generator backing this plan's probabilistic faults.

        The ``0xFA`` spawn-key prefix keeps fault streams disjoint from
        the job's noise streams even under a shared seed.
        """
        return np.random.default_rng(np.random.SeedSequence(
            entropy=int(self.seed), spawn_key=(0xFA,) + self.spawn_key))

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly summary (used by the chaos report)."""
        return {
            "active": self.active,
            "seed": int(self.seed),
            "spawn_key": list(self.spawn_key),
            "degradations": [
                {"t0": d.t0, "t1": d.t1, "factor": d.factor, "node": d.node}
                for d in self.degradations
            ],
            "stragglers": [
                {"rank": s.rank, "factor": s.factor} for s in self.stragglers
            ],
            "loss": None if self.loss is None else {
                "prob": self.loss.prob, "t0": self.loss.t0, "t1": self.loss.t1
            },
            "outages": [
                {"t0": o.t0, "t1": o.t1, "node": o.node} for o in self.outages
            ],
            "retry": {
                "timeout": self.retry.timeout, "backoff": self.retry.backoff,
                "backoff_cap": self.retry.backoff_cap,
                "max_retries": self.retry.max_retries,
            },
            "pacing": None if self.pacing is None else {
                "rate": self.pacing.rate, "burst": self.pacing.burst,
                "t0": self.pacing.t0, "t1": self.pacing.t1,
            },
        }


class NoFaults(FaultPlan):
    """The inert plan: never active, fork is the identity.

    Exists so the zero-fault default costs one cached-boolean branch in
    the transport — no RNG construction, no per-message checks, and
    bit-identical goldens.
    """

    @property
    def active(self) -> bool:
        return False

    def fork(self, stream: int) -> "NoFaults":
        return self


#: shared inert default (like ``NoNoise`` for the noise models)
NO_FAULTS = NoFaults()
