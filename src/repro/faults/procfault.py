"""Process-level fault plans: deterministic crash / hang / raise.

:mod:`repro.faults.plan` injects faults into the *simulated* transport;
this module injects faults into the **real execution fleet** — the
worker processes running a supervised
:func:`~repro.par.executor.sweep_map`.  A :class:`ProcFaultPlan` is a
pure-data schedule mapping ``(task index, run number)`` to an action:

``crash``
    the worker calls ``os._exit`` (no cleanup, no exception transport —
    the parent sees ``BrokenProcessPool``, exactly like an OOM kill),
``hang``
    the worker sleeps ``hang_seconds`` (long past any sane deadline, so
    the supervisor's watchdog must fire),
``raise``
    the task records an injected ``ProcFaultError`` (exercising the
    retry → bisect → quarantine path without killing anything).

Schedules are deterministic: a fault either always fires
(``max_runs=None`` — *poison*, e.g. a task that would crash any worker
it lands on) or fires on the first ``max_runs`` evaluations only
(*transient*, e.g. a one-off node failure).  Because run numbers are
tracked per task — not per chunk — the set of tasks a plan ultimately
quarantines is a pure function of the plan, independent of worker
count, chunk geometry, or gather order.  :func:`ProcFaultPlan.sample`
draws a schedule from the ``0xFC``-prefixed seed stream (disjoint from
the transport-fault ``0xFA`` and supervisor-backoff ``0xFB`` streams).

Like every fault plan in :mod:`repro.faults`, instances are frozen,
hashable, picklable (they travel to workers under ``spawn``), and cheap
to evaluate inline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

#: exit status used by injected worker crashes — distinctive enough to
#: grep for in CI logs, and asserted by the crash-consistency tests
PROC_FAULT_EXIT = 87

#: actions a plan can inject (also the quarantine ``reason`` values the
#: supervisor records for them, with ``raise`` surfacing as ``error``)
PROC_FAULT_KINDS = ("crash", "hang", "raise")


@dataclass(frozen=True)
class ProcFault:
    """One scheduled fault: ``kind`` fires for task ``index`` on every
    run up to ``max_runs`` (``None`` = every run, i.e. poison)."""

    kind: str
    index: int
    max_runs: Optional[int] = 1

    def __post_init__(self) -> None:
        if self.kind not in PROC_FAULT_KINDS:
            raise ValueError(
                f"ProcFault.kind must be one of {PROC_FAULT_KINDS}, "
                f"got {self.kind!r}")
        if self.index < 0:
            raise ValueError(
                f"ProcFault.index must be >= 0, got {self.index}")
        if self.max_runs is not None and self.max_runs < 1:
            raise ValueError(
                f"ProcFault.max_runs must be >= 1 or None, got "
                f"{self.max_runs}")

    def fires(self, run: int) -> bool:
        """Does this fault fire on the task's ``run``-th evaluation
        (1-based)?"""
        return self.max_runs is None or run <= self.max_runs


@dataclass(frozen=True)
class ProcFaultPlan:
    """A deterministic schedule of process-level faults for one sweep.

    ``action(index, run)`` is what workers consult before evaluating a
    task; the first matching fault wins.  An empty plan is inert and
    free (:attr:`active` is ``False``), mirroring
    :data:`~repro.faults.plan.NO_FAULTS`.
    """

    faults: Tuple[ProcFault, ...] = ()
    hang_seconds: float = 30.0
    exit_code: int = PROC_FAULT_EXIT

    def __post_init__(self) -> None:
        if not self.hang_seconds > 0:
            raise ValueError(
                f"ProcFaultPlan.hang_seconds must be > 0, got "
                f"{self.hang_seconds}")
        if not 0 < self.exit_code < 256:
            raise ValueError(
                f"ProcFaultPlan.exit_code must be in (0, 256), got "
                f"{self.exit_code}")

    @property
    def active(self) -> bool:
        return bool(self.faults)

    def action(self, index: int, run: int) -> Optional[str]:
        """The action to inject for task ``index`` on its ``run``-th
        evaluation (1-based), or ``None`` to run the task normally."""
        for fault in self.faults:
            if fault.index == index and fault.fires(run):
                return fault.kind
        return None

    def poison_indices(self) -> Tuple[int, ...]:
        """Tasks no amount of retrying can save (sorted): the
        deterministic quarantine set any supervised sweep converges to
        when its retry budget exceeds every transient's ``max_runs``."""
        return tuple(sorted(f.index for f in self.faults
                            if f.max_runs is None))

    def describe(self) -> Dict[str, object]:
        """JSON-ready summary (chaos reports embed this)."""
        return {
            "faults": [
                {"kind": f.kind, "index": f.index, "max_runs": f.max_runs}
                for f in sorted(self.faults,
                                key=lambda f: (f.index, f.kind))],
            "hang_seconds": self.hang_seconds,
            "exit_code": self.exit_code,
        }

    @staticmethod
    def sample(seed: int, n_tasks: int, *, crashes: int = 1,
               hangs: int = 0, raises: int = 0, poison: int = 0,
               hang_seconds: float = 30.0) -> "ProcFaultPlan":
        """Draw a deterministic schedule over ``n_tasks`` tasks.

        Distinct task indices are assigned to ``crashes`` transient
        crashes, ``hangs`` transient hangs, ``raises`` transient raised
        errors (all ``max_runs=1`` — they clear on retry) and
        ``poison`` persistent raises (quarantine fodder).  The draw
        depends only on ``(seed, n_tasks, counts)``.
        """
        wanted = crashes + hangs + raises + poison
        if wanted > n_tasks:
            raise ValueError(
                f"cannot place {wanted} faults on {n_tasks} task(s)")
        rng = np.random.default_rng(np.random.SeedSequence(
            entropy=int(seed), spawn_key=(0xFC,)))
        indices = rng.choice(n_tasks, size=wanted, replace=False)
        faults = []
        cursor = 0
        for kind, count, max_runs in (("crash", crashes, 1),
                                      ("hang", hangs, 1),
                                      ("raise", raises, 1),
                                      ("raise", poison, None)):
            for _ in range(count):
                faults.append(ProcFault(kind=kind,
                                        index=int(indices[cursor]),
                                        max_runs=max_runs))
                cursor += 1
        return ProcFaultPlan(faults=tuple(faults),
                             hang_seconds=hang_seconds)


def parse_proc_fault_spec(spec: str) -> Dict[str, int]:
    """Parse a ``--proc-faults`` spec into :meth:`ProcFaultPlan.sample`
    counts.

    The spec is comma-separated ``kind[=count]`` terms over ``crash``,
    ``hang``, ``raise`` (transient) and ``poison`` (persistent raise):
    ``"crash=2,raise"`` means two transient crashes and one transient
    raise.  A bare kind means count 1.
    """
    counts = {"crashes": 0, "hangs": 0, "raises": 0, "poison": 0}
    by_name = {"crash": "crashes", "hang": "hangs", "raise": "raises",
               "poison": "poison"}
    for term in spec.split(","):
        term = term.strip()
        if not term:
            continue
        name, _, value = term.partition("=")
        name = name.strip()
        if name not in by_name:
            raise ValueError(
                f"unknown proc-fault kind {name!r} (expected one of "
                f"{sorted(by_name)})")
        try:
            count = int(value) if value.strip() else 1
        except ValueError:
            raise ValueError(
                f"proc-fault count for {name!r} must be an integer, "
                f"got {value.strip()!r}") from None
        if count < 0:
            raise ValueError(
                f"proc-fault count for {name!r} must be >= 0, got "
                f"{count}")
        counts[by_name[name]] += count
    return counts


#: the inert schedule (kept for symmetry with ``NO_FAULTS``)
NO_PROC_FAULTS = ProcFaultPlan()
