"""Deterministic fault injection and resilience semantics.

Public surface:

* :class:`FaultPlan` and its fault specs (:class:`LinkDegradation`,
  :class:`Straggler`, :class:`MessageLoss`, :class:`DeviceOutage`,
  :class:`RetryPolicy`, :class:`Pacing`) — pure data, fork-able.
* :data:`NO_FAULTS` — the inert default plan.
* :class:`DeliveryError` — raised when a message exhausts its
  retransmit budget.
* :class:`ProcFaultPlan` / :class:`ProcFault` — *process-level* fault
  schedules (worker crash / hang / raise) for supervised sweeps, with
  :data:`NO_PROC_FAULTS` as the inert default.

The chaos harness lives in :mod:`repro.faults.chaos` and is imported
lazily by the CLI (it pulls in :mod:`repro.core`, which depends on the
transport, which depends on this package).
"""

from repro.faults.errors import DeliveryError
from repro.faults.plan import (
    NO_FAULTS,
    DeviceOutage,
    FaultPlan,
    LinkDegradation,
    MessageLoss,
    NoFaults,
    Pacing,
    RetryPolicy,
    Straggler,
)
from repro.faults.procfault import (
    NO_PROC_FAULTS,
    PROC_FAULT_EXIT,
    PROC_FAULT_KINDS,
    ProcFault,
    ProcFaultPlan,
    parse_proc_fault_spec,
)

__all__ = [
    "DeliveryError",
    "DeviceOutage",
    "FaultPlan",
    "LinkDegradation",
    "MessageLoss",
    "NoFaults",
    "NO_FAULTS",
    "NO_PROC_FAULTS",
    "PROC_FAULT_EXIT",
    "PROC_FAULT_KINDS",
    "Pacing",
    "ProcFault",
    "ProcFaultPlan",
    "RetryPolicy",
    "Straggler",
    "parse_proc_fault_spec",
]
