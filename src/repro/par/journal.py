"""Sweep journal: the checkpoint log behind ``--resume``.

A :class:`SweepJournal` is an append-only JSONL file recording the
progress of one supervised :func:`~repro.par.executor.sweep_map` call:
a ``sweep_start`` header naming the sweep (a stable fingerprint of the
task keys), one ``shard_done`` line per completed shard, free-form
recovery events (``task_quarantined`` etc.), and a ``sweep_end``
completeness manifest.  Every line is flushed as it is written, so a
process killed mid-sweep (SIGKILL included) leaves a journal whose
``shard_done`` set is exactly the shards whose results were already
checkpointed to the result cache.

Resume contract: the journal is *bookkeeping*, not the source of truth
— on ``resume=True`` the executor restores shard **values** from the
result cache and uses the journal only to identify the sweep and count
what a previous run completed.  A journaled shard whose cache entry
has vanished is simply re-executed, so a stale or truncated journal can
never corrupt results.

The journal deliberately does not depend on :mod:`repro.obs.ledger`
(which imports heavier machinery); it shares the same canonical-JSON
discipline — sorted keys, compact separators, ``NaN`` rejected — so
journal lines are byte-stable for a given record.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Set

#: bump when the journal record layout changes incompatibly
JOURNAL_SCHEMA = 1


def _dumps(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def journal_path(journal_dir: str, sweep_id: str) -> str:
    """Canonical journal location for a sweep under ``journal_dir``."""
    return os.path.join(journal_dir, f"sweep-{sweep_id}.jsonl")


def read_journal(path: str) -> List[Dict[str, Any]]:
    """Parse a journal, skipping a trailing torn line (a SIGKILL can
    land mid-``write``; every *complete* line is trustworthy)."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn tail — nothing after it was flushed
    return records


class SweepJournal:
    """Append-only progress log for one supervised sweep.

    ``resume=True`` re-opens an existing journal (matching ``sweep_id``
    — a different id means the caller is pointing an old journal at a
    different sweep, which is an error) and exposes the previously
    completed shard indices via :attr:`done`.  A missing journal under
    ``resume`` simply starts fresh: resuming a sweep that never ran is
    the same as running it.
    """

    def __init__(self, path: str, sweep_id: str, *, tasks: int,
                 resume: bool = False) -> None:
        self.path = path
        self.sweep_id = sweep_id
        self.tasks = tasks
        self.done: Set[int] = set()
        self.resumed = False
        if resume and os.path.exists(path):
            for record in read_journal(path):
                kind = record.get("kind")
                if kind == "sweep_start":
                    if record.get("sweep_id") != sweep_id:
                        raise ValueError(
                            f"journal {path} belongs to sweep "
                            f"{record.get('sweep_id')!r}, not "
                            f"{sweep_id!r} — refusing to resume a "
                            f"different sweep")
                elif kind == "shard_done":
                    self.done.add(int(record["index"]))
            self.resumed = True
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fh: Optional[Any] = open(path, "a", encoding="utf-8")
        if self.resumed:
            self._write({"kind": "sweep_resume", "done": len(self.done),
                         "tasks": tasks})
        else:
            self._write({"kind": "sweep_start", "schema": JOURNAL_SCHEMA,
                         "sweep_id": sweep_id, "tasks": tasks})

    def _write(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            raise ValueError(f"journal {self.path} is closed")
        self._fh.write(_dumps(record) + "\n")
        # flush per record: the journal's whole point is surviving a
        # kill between any two shards
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def shard_done(self, index: int, key: Optional[str] = None) -> None:
        """Checkpoint one completed shard (call *after* the cache put,
        so a journaled shard always has a restorable value)."""
        record: Dict[str, Any] = {"kind": "shard_done", "index": index}
        if key is not None:
            record["key"] = key
        self._write(record)
        self.done.add(index)

    def event(self, kind: str, **fields: Any) -> None:
        """Append a free-form recovery event (quarantines etc.)."""
        self._write({"kind": kind, **fields})

    def finish(self, completed: int, quarantined: List[int]) -> None:
        """Write the ``sweep_end`` completeness manifest."""
        self._write({"kind": "sweep_end", "completed": completed,
                     "quarantined": list(quarantined)})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
