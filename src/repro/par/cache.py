"""Content-addressed result cache for sweep shards.

A sweep shard (one chaos scenario x strategy run, one figure panel, one
scenario model sweep, ...) is a pure function of its inputs: machine
constants, pattern content, strategy label, seed and fault plan.  The
cache keys shards by a **stable content hash** of exactly those inputs
plus :data:`CACHE_SCHEMA` (the "code version" component — bump it when
simulator semantics change and every stale entry invalidates at once).

Two tiers:

* an **in-memory** dict, always on — repeated sweeps inside one process
  (e.g. the perf suite's warm-cache arm) hit it for free;
* an optional **on-disk** tier (``directory=...``), one pickle file per
  key under ``<dir>/<key[:2]>/<key>.pkl`` with atomic writes, so
  re-running a figure grid or chaos sweep across processes skips
  completed shards.  The default location is ``.repro-cache/`` (or
  ``$REPRO_CACHE_DIR``); both are gitignored.

Keys are built with :func:`cache_key`, values must be picklable.  The
disk tier is written by the *parent* process only (the executor gathers
results first), so no cross-process write coordination is needed.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import struct
from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np

#: cache schema / code version — part of every key; bump to invalidate
#: all previously stored shard results (e.g. when simulator cost
#: semantics change in a way that alters shard outputs).
#: 2: chaos shards gained a per-cell ``phases`` profile.
CACHE_SCHEMA = 2

#: environment variable overriding the default on-disk cache location
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: default on-disk tier location (relative to the working directory)
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> str:
    """Resolve the on-disk tier directory (env override or default)."""
    return os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR


# ---------------------------------------------------------------------------
# Stable fingerprinting
# ---------------------------------------------------------------------------
def _encode(obj: Any) -> Iterator[bytes]:
    """Yield a canonical, type-tagged byte encoding of ``obj``.

    Collision-resistant across types (every value is tagged), stable
    across processes and Python versions (no ``hash()``, no ``repr`` of
    floats), and insensitive to dict insertion order.
    """
    if obj is None:
        yield b"N"
    elif isinstance(obj, bool):
        yield b"b1" if obj else b"b0"
    elif isinstance(obj, int):
        yield b"i" + str(obj).encode()
    elif isinstance(obj, float):
        yield b"f" + struct.pack(">d", obj)
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        yield b"s" + str(len(raw)).encode() + b":" + raw
    elif isinstance(obj, bytes):
        yield b"y" + str(len(obj)).encode() + b":" + obj
    elif isinstance(obj, enum.Enum):
        yield b"e" + type(obj).__name__.encode() + b"." + obj.name.encode()
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        yield (b"a" + arr.dtype.str.encode() + b"|"
               + str(arr.shape).encode() + b"|")
        yield arr.tobytes()
    elif isinstance(obj, np.generic):
        yield from _encode(obj.item())
    elif isinstance(obj, (list, tuple)):
        yield b"(" if isinstance(obj, tuple) else b"["
        for item in obj:
            yield from _encode(item)
            yield b","
        yield b")" if isinstance(obj, tuple) else b"]"
    elif isinstance(obj, (set, frozenset)):
        yield b"{"
        for blob in sorted(b"".join(_encode(item)) for item in obj):
            yield blob
            yield b","
        yield b"}"
    elif isinstance(obj, dict):
        yield b"<"
        pairs = sorted(
            (b"".join(_encode(k)), b"".join(_encode(v)))
            for k, v in obj.items()
        )
        for kb, vb in pairs:
            yield kb + b"=" + vb + b";"
        yield b">"
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        yield b"D" + type(obj).__qualname__.encode() + b"("
        for f in dataclasses.fields(obj):
            yield f.name.encode() + b"="
            yield from _encode(getattr(obj, f.name))
            yield b","
        yield b")"
    else:
        raise TypeError(
            f"cannot fingerprint {type(obj).__name__!r} value {obj!r}; "
            f"pass plain data (numbers, strings, arrays, dataclasses, "
            f"containers)")


def stable_fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``obj``."""
    h = hashlib.sha256()
    for chunk in _encode(obj):
        h.update(chunk)
    return h.hexdigest()


def cache_key(kind: str, **parts: Any) -> str:
    """Content hash of one shard's inputs.

    ``kind`` namespaces the shard family (``"chaos-shard"``,
    ``"fig4_3-panel"``, ...); ``parts`` are the inputs the shard is a
    pure function of.  :data:`CACHE_SCHEMA` is always mixed in, so
    bumping it invalidates every existing entry.
    """
    return stable_fingerprint({
        "kind": kind,
        "schema": CACHE_SCHEMA,
        "parts": parts,
    })


# ---------------------------------------------------------------------------
# The cache proper
# ---------------------------------------------------------------------------
class ResultCache:
    """Two-tier (memory + optional disk) content-addressed result store.

    Parameters
    ----------
    directory:
        On-disk tier root.  ``None`` disables the disk tier (memory
        only); pass :func:`default_cache_dir` for the standard
        ``.repro-cache/`` location.

    Counters (``hits``, ``misses``, ``stores``, ``disk_hits``,
    ``corrupt``) make cache behaviour assertable in tests: a warm
    re-run of a sweep must show ``misses == 0``.  Every lookup/store
    also appends an **event** ``{"op":
    "hit"|"miss"|"store"|"corrupt"|"repair", "key": <stable
    fingerprint>, "tier": "memory"|"disk"|None}`` to :attr:`events`, so
    the run ledger can attribute cache behaviour to specific shard
    fingerprints — in particular, a corrupt on-disk entry (present but
    unreadable) is distinguished from an ordinary miss instead of being
    silently folded into miss-only accounting, and is **deleted on
    detection** (a ``repair`` event + the ``repaired`` counter) so it
    costs one recompute instead of re-failing on every lookup.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory
        self._memory: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.disk_hits = 0
        self.corrupt = 0
        self.repaired = 0
        self.events: List[Dict[str, Any]] = []

    @classmethod
    def with_disk(cls, directory: Optional[str] = None) -> "ResultCache":
        """A cache whose disk tier lives at ``directory`` (or default)."""
        return cls(directory=directory or default_cache_dir())

    def _path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, key[:2], key + ".pkl")

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` — value is ``None`` on a miss.

        A disk entry that exists but cannot be read back (truncated
        write, unpicklable payload, stale class) counts as **corrupt**,
        not merely as a miss: the ``corrupt`` counter advances and a
        ``{"op": "corrupt"}`` event is recorded before the shard is
        recomputed, so the run ledger can surface a ``cache_corrupt``
        record instead of silent miss-only accounting.
        """
        if key in self._memory:
            self.hits += 1
            self.events.append({"op": "hit", "key": key, "tier": "memory"})
            return True, self._memory[key]
        if self.directory is not None:
            path = self._path(key)
            try:
                with open(path, "rb") as fh:
                    value = pickle.load(fh)
            except FileNotFoundError:
                pass  # absent -> ordinary miss (recomputed below)
            except (OSError, pickle.PickleError, EOFError,
                    AttributeError, ImportError, ValueError):
                # present but unreadable -> corrupt, then miss
                self.corrupt += 1
                self.events.append(
                    {"op": "corrupt", "key": key, "tier": "disk"})
                # repair: delete the entry so it re-fails exactly once
                # (the recomputed value's put() rewrites it) instead of
                # surfacing as cache_corrupt on every future lookup
                try:
                    os.remove(path)
                except OSError:
                    pass  # already gone, or unremovable -> next put fixes
                else:
                    self.repaired += 1
                    self.events.append(
                        {"op": "repair", "key": key, "tier": "disk"})
            else:
                self._memory[key] = value
                self.hits += 1
                self.disk_hits += 1
                self.events.append(
                    {"op": "hit", "key": key, "tier": "disk"})
                return True, value
        self.misses += 1
        self.events.append({"op": "miss", "key": key, "tier": None})
        return False, None

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` in both tiers (atomic disk write)."""
        self._memory[key] = value
        self.stores += 1
        self.events.append({
            "op": "store", "key": key,
            "tier": "memory" if self.directory is None else "disk",
        })
        if self.directory is not None:
            path = self._path(key)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = path + f".tmp.{os.getpid()}"
            with open(tmp, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)

    def __len__(self) -> int:
        return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the in-memory tier (disk entries survive)."""
        self._memory.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either tier (0.0 when idle)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "disk_hits": self.disk_hits,
            "corrupt": self.corrupt,
            "repaired": self.repaired,
            "hit_rate": self.hit_rate,
        }
