"""Parallel sweep executor: deterministic fan-out over process pools.

Every expensive entry point in the repro (chaos sweeps, figure grids,
the SpMV suite, scenario model sweeps, the perf suite) is a loop over
**independent, pure** shard evaluations.  :func:`sweep_map` is the one
fan-out primitive they all share:

* **Serial fallback** — at ``jobs=1`` it is a plain in-process loop: no
  pool, no pickling, no extra allocation, so existing golden outputs
  stay bit-exact and single-core runs pay nothing.
* **Deterministic sharding** — tasks are split into *contiguous* chunks
  by :func:`shard_tasks` (a pure function of ``(n, jobs, chunk_size)``),
  so the work distribution never depends on scheduler timing.
* **Ordered gather** — results are re-assembled by task index, so the
  output list is **bit-identical** to the serial order regardless of
  worker count or completion order.
* **Spawn-safe** — the shard function must be a module-level callable
  and every task spec picklable; the pool start method defaults to the
  cheapest available (``fork`` on POSIX) but honours
  ``$REPRO_START_METHOD`` and the ``start_method=`` argument, and the
  test suite pins ``spawn`` compatibility.
* **Content-addressed caching** — pass a
  :class:`~repro.par.cache.ResultCache` plus a ``key_fn``; cache hits
  skip evaluation entirely and only misses are fanned out.
* **Supervised execution** (opt-in, via :class:`SweepPolicy` /
  ``journal_dir`` / ``resume`` / ``proc_faults``) — the fan-out becomes
  fault tolerant instead of all-or-nothing:

  - a **watchdog** enforces per-chunk wall-clock deadlines
    (``task_timeout`` seconds per task); a chunk past its deadline is
    declared hung, the pool is killed and respawned, and every innocent
    in-flight chunk is resubmitted without penalty;
  - a **lost worker** (``BrokenProcessPool`` — e.g. a child that
    ``os._exit``'s) likewise respawns the pool; the chunks that were
    in flight are re-run one at a time in *isolation* so guilt is
    attributed exactly (an innocent chunk that merely shared the pool
    is never penalized);
  - a guilty multi-task chunk is **bisected** — split in half and
    re-run — until the poison task is isolated;
  - a guilty single task is retried under the plan's bounded, seeded
    exponential-backoff :class:`~repro.faults.plan.RetryPolicy` and
    finally **quarantined**: recorded (index, cache key, reason,
    error) in :attr:`SweepStats.quarantined` and, in strict mode,
    re-raised at the end as :class:`SweepQuarantineError` — the sweep
    always completes with an explicit completeness manifest;
  - completed shards **checkpoint incrementally**: cache ``put`` on
    gather (not after the full sweep) plus a
    :class:`~repro.par.journal.SweepJournal` line per shard, so a
    killed process can ``resume=True`` and re-execute only the missing
    shards — the final result list is bit-identical to a fault-free
    serial run.

  Deterministic *process-level* fault injection for all of the above
  lives in :mod:`repro.faults.procfault` (crash / hang / raise on
  seeded schedules), driven by ``python -m repro chaos --proc-faults``.

Worker count resolution (:func:`resolve_jobs`): explicit ``jobs``
argument, else ``$REPRO_JOBS``, else 1.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import statistics
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.plan import RetryPolicy

#: default straggler threshold: a chunk this many times slower than the
#: median chunk of its sweep is flagged (see :meth:`SweepStats.stragglers`)
STRAGGLER_FACTOR = 2.0

#: environment variable supplying the default worker count
ENV_JOBS = "REPRO_JOBS"

#: environment variable overriding the multiprocessing start method
ENV_START_METHOD = "REPRO_START_METHOD"

#: supervisor retry defaults — wall-clock scale (the simulated
#: transport's :class:`RetryPolicy` defaults are virtual-time scale)
DEFAULT_SWEEP_RETRY = RetryPolicy(timeout=30.0, backoff=0.05,
                                  backoff_cap=1.0, max_retries=2)

#: extra wall seconds granted on top of a chunk's deadline, per start
#: method — spawn/forkserver workers re-import the package before the
#: first task runs, which must not read as a hang
POOL_SPINUP_GRACE = {"fork": 0.25}
DEFAULT_SPINUP_GRACE = 2.0


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: argument > ``$REPRO_JOBS`` > 1."""
    from_env = False
    if jobs is None or jobs == 0:
        env = os.environ.get(ENV_JOBS, "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"${ENV_JOBS} must be a positive integer, got {env!r}"
            ) from None
        from_env = True
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        if from_env:
            # Name the source: "repro chaos" never passed this value,
            # the environment did, and the fix is $REPRO_JOBS.
            raise ValueError(
                f"${ENV_JOBS} must be a positive integer, got {jobs!r}")
        raise ValueError(f"jobs must be a positive integer, got {jobs!r}")
    return jobs


def default_start_method() -> str:
    """Cheapest safe start method (env override > fork > spawn)."""
    env = os.environ.get(ENV_START_METHOD, "").strip()
    if env:
        return env
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def shard_tasks(n: int, jobs: int,
                chunk_size: Optional[int] = None) -> List[Tuple[int, int]]:
    """Deterministic contiguous ``[start, stop)`` chunks covering ``n``.

    The default chunk size targets ~4 chunks per worker — small enough
    to balance uneven shard costs, large enough to amortize pickling —
    and depends only on ``(n, jobs, chunk_size)``, never on timing.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if n == 0:
        return []
    if chunk_size is None:
        chunk_size = max(1, -(-n // (4 * max(jobs, 1))))
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [(lo, min(lo + chunk_size, n)) for lo in range(0, n, chunk_size)]


@dataclass(frozen=True)
class SweepPolicy:
    """Supervision contract for one :func:`sweep_map` call.

    ``task_timeout`` is the per-task wall-clock budget: a chunk of
    ``k`` tasks is declared hung ``task_timeout * k`` (plus a start-
    method spin-up grace) seconds after submission, its workers are
    killed and the chunk is re-run.  ``None`` disables the watchdog
    (lost workers are still detected and respawned).

    ``retry`` reuses the fault plan's
    :class:`~repro.faults.plan.RetryPolicy` semantics for *resubmission*:
    retry ``k`` of a guilty single task waits
    ``min(backoff * 2**k, backoff_cap)`` seconds (jittered by a stream
    seeded from ``seed``), and after ``max_retries`` retries the task is
    quarantined.  ``strict`` re-raises quarantined tasks at the end of
    the sweep as :class:`SweepQuarantineError`; non-strict sweeps leave
    ``None`` at the quarantined indices and report them via
    :attr:`SweepStats.quarantined`.
    """

    task_timeout: Optional[float] = None
    retry: RetryPolicy = DEFAULT_SWEEP_RETRY
    seed: int = 0
    strict: bool = True

    def __post_init__(self) -> None:
        if self.task_timeout is not None and not self.task_timeout > 0:
            raise ValueError(
                f"SweepPolicy.task_timeout must be > 0 or None, got "
                f"{self.task_timeout!r}")
        if not isinstance(self.retry, RetryPolicy):
            raise ValueError(
                f"SweepPolicy.retry must be a RetryPolicy, got "
                f"{self.retry!r}")

    def backoff_delay(self, attempt: int,
                      rng: Optional[np.random.Generator] = None) -> float:
        """Seconds to wait before retry ``attempt`` (0-based)."""
        delay = min(self.retry.backoff * (2 ** attempt),
                    self.retry.backoff_cap)
        if rng is not None and delay > 0.0:
            delay *= 0.5 + rng.random()  # seeded jitter in [0.5, 1.5)
        return delay

    def rng(self) -> np.random.Generator:
        """Backoff-jitter stream (``0xFB`` prefix: disjoint from the
        fault streams' ``0xFA`` and the bare noise streams)."""
        return np.random.default_rng(np.random.SeedSequence(
            entropy=int(self.seed), spawn_key=(0xFB,)))


class SweepQuarantineError(RuntimeError):
    """A strict supervised sweep finished with quarantined tasks.

    ``quarantined`` holds the completeness manifest entries
    (``{"index", "key", "reason", "error"}``) so callers can still see
    exactly which shards are missing and why.
    """

    def __init__(self, quarantined: Sequence[Dict[str, Any]]) -> None:
        self.quarantined = [dict(q) for q in quarantined]
        head = "; ".join(
            f"task {q['index']} [{q['reason']}] {q['error']}"
            for q in self.quarantined[:4])
        more = (f" (+{len(self.quarantined) - 4} more)"
                if len(self.quarantined) > 4 else "")
        super().__init__(
            f"{len(self.quarantined)} task(s) quarantined after "
            f"exhausting retries: {head}{more}")


@dataclass
class SweepStats:
    """Observability of one :func:`sweep_map` call (filled in place).

    ``worker_events`` is the sweep's **fleet telemetry**: one
    heartbeat/progress record per gathered chunk —
    ``{"chunk", "lo", "hi", "tasks", "done", "total", "wall_s", "pid"}``
    — where ``done``/``total`` count chunks gathered so far (progress),
    ``wall_s`` is the chunk's measured in-worker wall clock and ``pid``
    the worker that ran it.  Task counts are deterministic; wall
    seconds and pids are not (the run ledger records them inside its
    non-deterministic envelope).

    Supervised sweeps additionally fill the **recovery telemetry**:
    ``retried`` / ``respawns`` / ``resumed`` counters, the
    ``quarantined`` completeness manifest, and ``recovery_events`` —
    one record per supervision action (``worker_lost``,
    ``chunk_retry``, ``task_quarantined``, ``sweep_resume``) that the
    run ledger forwards (quarantines deterministically, the rest as
    volatile execution-shape facts).
    """

    tasks: int = 0          # total shards requested
    executed: int = 0       # shards actually evaluated (cache misses)
    cache_hits: int = 0     # shards served from the cache
    jobs: int = 0           # resolved worker count
    chunks: int = 0         # work units submitted to the pool (0 = serial)
    retried: int = 0        # chunk/task resubmissions (supervised only)
    respawns: int = 0       # pool respawns after lost/hung workers
    resumed: int = 0        # shards restored from a prior journaled run
    obs_payloads: List[Any] = field(default_factory=list)
    worker_events: List[Dict[str, Any]] = field(default_factory=list)
    quarantined: List[Dict[str, Any]] = field(default_factory=list)
    recovery_events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of shards served from the cache (0.0 when empty)."""
        return self.cache_hits / self.tasks if self.tasks else 0.0

    def recovery(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Append (and return) one recovery-telemetry record."""
        record = {"kind": kind, **fields}
        self.recovery_events.append(record)
        return record

    def stragglers(self, factor: float = STRAGGLER_FACTOR
                   ) -> List[Dict[str, Any]]:
        """Chunks at least ``factor`` x slower than the median chunk.

        Straggler detection needs a population to compare against:
        fewer than three timed chunks yields no flags.  The returned
        records are the matching :attr:`worker_events` entries.
        """
        if factor <= 1.0:
            raise ValueError(f"factor must be > 1, got {factor}")
        walls = [ev["wall_s"] for ev in self.worker_events]
        if len(walls) < 3:
            return []
        # statistics.median averages the middle pair for even-length
        # sweeps; indexing the sorted list would take the upper middle
        # and bias the threshold high.
        median = statistics.median(walls)
        if median <= 0.0:
            return []
        return [ev for ev in self.worker_events
                if ev["wall_s"] >= factor * median]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (fleet details under ``"fleet"``,
        supervision details under ``"recovery"``)."""
        return {
            "tasks": self.tasks,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "fleet": {
                "jobs": self.jobs,
                "chunks": self.chunks,
                "heartbeats": [dict(ev) for ev in self.worker_events],
                "stragglers": [ev["chunk"] for ev in self.stragglers()],
            },
            "recovery": {
                "retried": self.retried,
                "respawns": self.respawns,
                "resumed": self.resumed,
                "quarantined": [dict(q) for q in self.quarantined],
                "events": [dict(ev) for ev in self.recovery_events],
            },
        }


def _run_chunk(fn: Callable[[Any], Any], chunk: List[Tuple[int, Any]]
               ) -> Tuple[List[Tuple[int, Any]], Dict[str, Any]]:
    """Worker body: evaluate one contiguous chunk of (index, task).

    Returns the results plus the chunk's telemetry (task span, measured
    wall seconds, worker pid) for :attr:`SweepStats.worker_events`.
    """
    t0 = time.perf_counter()
    results = [(index, fn(task)) for index, task in chunk]
    telemetry = {
        "lo": chunk[0][0],
        "hi": chunk[-1][0],
        "tasks": len(chunk),
        "wall_s": time.perf_counter() - t0,
        "pid": os.getpid(),
    }
    return results, telemetry


def _run_chunk_guarded(fn: Callable[[Any], Any],
                       chunk: List[Tuple[int, Any]],
                       faults: Any,
                       runs: Dict[int, int]
                       ) -> Tuple[List[Tuple[int, bool, Any, Optional[str]]],
                                  Dict[str, Any]]:
    """Supervised worker body: per-task outcomes instead of fail-fast.

    Each task yields ``(index, ok, value, error)`` — a task that raises
    is *recorded*, not propagated, so one poison task cannot discard its
    chunk-mates' results.  ``faults`` (a
    :class:`~repro.faults.procfault.ProcFaultPlan` or ``None``) injects
    process-level failures first: ``crash`` exits the worker without
    cleanup, ``hang`` sleeps past any reasonable deadline, ``raise``
    records an injected error.  ``runs`` carries each task's 1-based
    evaluation count so transient schedules can clear on retry.
    """
    t0 = time.perf_counter()
    outcomes: List[Tuple[int, bool, Any, Optional[str]]] = []
    for index, task in chunk:
        if faults is not None:
            action = faults.action(index, runs[index])
            if action == "crash":
                os._exit(faults.exit_code)
            elif action == "hang":
                time.sleep(faults.hang_seconds)
            elif action == "raise":
                outcomes.append((index, False, None,
                                 f"ProcFaultError: injected raise "
                                 f"(task {index})"))
                continue
        try:
            value = fn(task)
        except BaseException as exc:  # noqa: BLE001 — quarantine wants all
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            outcomes.append((index, False, None,
                             f"{type(exc).__name__}: {exc}"))
        else:
            outcomes.append((index, True, value, None))
    telemetry = {
        "lo": chunk[0][0],
        "hi": chunk[-1][0],
        "tasks": len(chunk),
        "wall_s": time.perf_counter() - t0,
        "pid": os.getpid(),
    }
    return outcomes, telemetry


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool's workers and reap them (hung workers never
    exit on their own, so a plain shutdown would block forever)."""
    procs = list(getattr(pool, "_processes", {}).values())
    for proc in procs:
        try:
            proc.terminate()
        except (OSError, ValueError):  # pragma: no cover — racing exit
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover — cancel_futures needs 3.9
        pool.shutdown(wait=False)
    for proc in procs:
        try:
            proc.join(timeout=5.0)
        except (OSError, ValueError, AssertionError):  # pragma: no cover
            pass


class _Supervisor:
    """State machine for one supervised fan-out (see :func:`sweep_map`).

    Failure attribution protocol: when the pool breaks (a worker died)
    every in-flight chunk is *suspect* — guilt is unknowable pool-wide —
    so suspects re-run one at a time in isolation.  A chunk that fails
    alone is guilty: bisected while it holds more than one task,
    retried under the policy's backoff once it is a single task, and
    quarantined when retries exhaust.  A chunk that succeeds alone was
    an innocent bystander and is never penalized, which keeps the
    quarantine set a pure function of the fault schedule (not of the
    worker count or chunk geometry).
    """

    def __init__(self, fn: Callable[[Any], Any],
                 pending: List[Tuple[int, Any]], jobs: int,
                 chunk_size: Optional[int], start_method: str,
                 policy: SweepPolicy, stats: SweepStats,
                 proc_faults: Any,
                 checkpoint: Callable[[int, Any], None]) -> None:
        self.fn = fn
        self.jobs = jobs
        self.start_method = start_method
        self.policy = policy
        self.stats = stats
        self.faults = proc_faults
        self.checkpoint = checkpoint
        self.rng = policy.rng()
        spans = shard_tasks(len(pending), jobs, chunk_size)
        self.queue: collections.deque = collections.deque(
            pending[lo:hi] for lo, hi in spans)
        self.suspects: collections.deque = collections.deque()
        self.inflight: Dict[Any, List[Tuple[int, Any]]] = {}
        self.deadlines: Dict[Any, float] = {}
        self.runs: Dict[int, int] = {index: 0 for index, _ in pending}
        self.attempts: Dict[int, int] = {index: 0 for index, _ in pending}
        self.results: Dict[int, Any] = {}
        self.gathered = 0
        self.pool: Optional[ProcessPoolExecutor] = None
        self.grace = POOL_SPINUP_GRACE.get(start_method,
                                           DEFAULT_SPINUP_GRACE)

    # -- pool lifecycle -----------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self.pool is None:
            ctx = multiprocessing.get_context(self.start_method)
            self.pool = ProcessPoolExecutor(max_workers=self.jobs,
                                            mp_context=ctx)
        return self.pool

    def _respawn(self) -> None:
        if self.pool is not None:
            _kill_pool(self.pool)
            self.pool = None
        self.stats.respawns += 1
        self.deadlines.clear()

    def _submit(self, chunk: List[Tuple[int, Any]]) -> None:
        pool = self._ensure_pool()
        for index, _task in chunk:
            self.runs[index] += 1
        future = pool.submit(_run_chunk_guarded, self.fn, chunk,
                             self.faults,
                             {index: self.runs[index]
                              for index, _ in chunk})
        self.inflight[future] = chunk
        self.stats.chunks += 1
        if self.policy.task_timeout is not None:
            self.deadlines[future] = (
                time.monotonic()
                + self.policy.task_timeout * len(chunk) + self.grace)

    # -- failure handling ---------------------------------------------------
    def _quarantine(self, index: int, reason: str, error: str) -> None:
        record = {"index": index, "key": None, "reason": reason,
                  "error": error}
        self.stats.quarantined.append(record)
        self.stats.recovery("task_quarantined", index=index,
                            reason=reason, error=error)

    def _penalize(self, chunk: List[Tuple[int, Any]], reason: str,
                  error: Optional[str] = None) -> None:
        """A chunk failed *attributably*: bisect or retry/quarantine."""
        span = (chunk[0][0], chunk[-1][0])
        if len(chunk) > 1:
            mid = len(chunk) // 2
            self.stats.recovery("chunk_retry", reason=reason,
                                action="bisect", lo=span[0], hi=span[1],
                                tasks=len(chunk))
            self.stats.retried += 1
            self.queue.appendleft(chunk[mid:])
            self.queue.appendleft(chunk[:mid])
            return
        index = chunk[0][0]
        self.attempts[index] += 1
        attempt = self.attempts[index]
        message = error or f"worker {reason} while running task {index}"
        if attempt > self.policy.retry.max_retries:
            self._quarantine(index, reason, message)
            return
        self.stats.retried += 1
        self.stats.recovery("chunk_retry", reason=reason, action="retry",
                            lo=index, hi=index, tasks=1, attempt=attempt)
        delay = self.policy.backoff_delay(attempt - 1, self.rng)
        if delay > 0.0:
            time.sleep(delay)
        self.queue.appendleft(list(chunk))

    # -- gather -------------------------------------------------------------
    def _absorb(self, chunk: List[Tuple[int, Any]],
                outcomes: List[Tuple[int, bool, Any, Optional[str]]],
                telemetry: Dict[str, Any]) -> None:
        self.gathered += 1
        task_by_index = dict(chunk)
        for index, ok, value, error in outcomes:
            if ok:
                self.results[index] = value
                self.checkpoint(index, value)
            else:
                self._penalize([(index, task_by_index[index])],
                               "error", error)
        self.stats.worker_events.append({
            "chunk": self.gathered - 1, "done": self.gathered,
            "total": self.gathered + len(self.queue)
            + len(self.suspects) + len(self.inflight), **telemetry,
        })

    # -- main loop ----------------------------------------------------------
    def run(self) -> Dict[int, Any]:
        try:
            while self.queue or self.suspects or self.inflight:
                self._top_up()
                if self.inflight:
                    self._step()
        finally:
            if self.pool is not None:
                _kill_pool(self.pool)
                self.pool = None
        return self.results

    def _top_up(self) -> None:
        """Keep exactly the runnable set submitted.

        Submitting no more chunks than workers means every in-flight
        chunk is actually *running*, so watchdog deadlines and crash
        attribution never implicate a chunk that was merely queued.
        While suspects exist they run strictly one at a time, alone in
        the pool, so a repeat failure identifies the guilty chunk.
        """
        if self.suspects:
            if not self.inflight:
                self._submit(self.suspects.popleft())
            return
        while self.queue and len(self.inflight) < self.jobs:
            self._submit(self.queue.popleft())

    def _step(self) -> None:
        timeout = None
        if self.deadlines:
            timeout = max(0.0, min(self.deadlines.values())
                          - time.monotonic())
        done, _ = wait(list(self.inflight), timeout=timeout,
                       return_when=FIRST_COMPLETED)
        broken: List[List[Tuple[int, Any]]] = []
        for future in done:
            chunk = self.inflight.get(future)
            if chunk is None:
                continue
            try:
                outcomes, telemetry = future.result()
            except (BrokenExecutor, OSError):
                # the worker died (or the result transport collapsed
                # with it) — guilt is attributed below, not here
                self.inflight.pop(future, None)
                self.deadlines.pop(future, None)
                broken.append(chunk)
                continue
            self.inflight.pop(future, None)
            self.deadlines.pop(future, None)
            self._absorb(chunk, outcomes, telemetry)
        if broken:
            # The pool is dead: every still-in-flight chunk was killed
            # with it.  A lone broken chunk with no bystanders is
            # guilty by elimination; otherwise nobody can be blamed
            # pool-wide, so all of them re-run in isolation.
            bystanders = list(self.inflight.values())
            self.inflight.clear()
            self._respawn()
            if len(broken) == 1 and not bystanders:
                chunk = broken[0]
                self.stats.recovery("worker_lost", reason="crash",
                                    lo=chunk[0][0], hi=chunk[-1][0],
                                    tasks=len(chunk))
                self._penalize(chunk, "crash")
            else:
                for chunk in broken:
                    self.stats.recovery("worker_lost", reason="crash",
                                        lo=chunk[0][0], hi=chunk[-1][0],
                                        tasks=len(chunk))
                    self.suspects.append(chunk)
                for chunk in bystanders:
                    self.suspects.append(chunk)
            return
        if self.deadlines:
            now = time.monotonic()
            expired = [future for future in list(self.inflight)
                       if future in self.deadlines
                       and now >= self.deadlines[future]
                       and not future.done()]
            if expired:
                # chunks past their own deadline are hung (each deadline
                # already budgets for the chunk's size); the rest were
                # innocent pool-mates and re-run without penalty
                guilty = [self.inflight.pop(future) for future in expired]
                bystanders = list(self.inflight.values())
                self.inflight.clear()
                self._respawn()
                for chunk in guilty:
                    self.stats.recovery("worker_lost", reason="hang",
                                        lo=chunk[0][0], hi=chunk[-1][0],
                                        tasks=len(chunk))
                    self._penalize(chunk, "hang")
                for chunk in bystanders:
                    self.queue.appendleft(chunk)


def sweep_map(fn: Callable[[Any], Any], tasks: Sequence[Any],
              jobs: Optional[int] = None, *,
              cache: Optional[Any] = None,
              key_fn: Optional[Callable[[Any], str]] = None,
              chunk_size: Optional[int] = None,
              start_method: Optional[str] = None,
              stats: Optional[SweepStats] = None,
              policy: Optional[SweepPolicy] = None,
              journal_dir: Optional[str] = None,
              resume: bool = False,
              proc_faults: Optional[Any] = None) -> List[Any]:
    """``[fn(t) for t in tasks]`` with optional fan-out and caching.

    The result list is always in task order and bit-identical across
    worker counts (``fn`` must be a pure function of its task).  With
    ``jobs > 1``, ``fn`` must be module-level and each task picklable.

    **Unsupervised** (the default — none of ``policy`` / ``journal_dir``
    / ``resume`` / ``proc_faults`` given): exceptions raised by ``fn``
    propagate to the caller (the pool is shut down first), the cache is
    written after the full ordered gather, and a crashed or hung worker
    aborts the sweep — the zero-overhead fast path is byte-for-byte the
    pre-supervision behaviour.

    **Supervised** (any of those arguments given): lost and hung
    workers are detected, the pool respawned, failing chunks bisected
    and poison tasks quarantined under ``policy`` (see
    :class:`SweepPolicy`); completed shards checkpoint incrementally to
    ``cache`` and to a :class:`~repro.par.journal.SweepJournal` under
    ``journal_dir``; ``resume=True`` (requires ``cache`` and
    ``journal_dir``) restores previously completed shards and
    re-executes only the missing ones.  ``proc_faults`` injects
    deterministic process-level failures (tests / ``repro chaos
    --proc-faults``).
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    supervised = (policy is not None or journal_dir is not None
                  or resume or proc_faults is not None)
    if supervised:
        return _sweep_supervised(
            fn, tasks, jobs, cache=cache, key_fn=key_fn,
            chunk_size=chunk_size,
            start_method=start_method or default_start_method(),
            stats=stats, policy=policy or SweepPolicy(),
            journal_dir=journal_dir, resume=resume,
            proc_faults=proc_faults)

    results: List[Any] = [None] * len(tasks)
    keys: List[Optional[str]] = [None] * len(tasks)
    pending: List[Tuple[int, Any]] = []
    if cache is not None:
        if key_fn is None:
            raise ValueError("cache requires a key_fn")
        for index, task in enumerate(tasks):
            key = key_fn(task)
            keys[index] = key
            hit, value = cache.lookup(key)
            if hit:
                results[index] = value
            else:
                pending.append((index, task))
    else:
        pending = list(enumerate(tasks))

    if stats is not None:
        stats.tasks = len(tasks)
        stats.executed = len(pending)
        stats.cache_hits = len(tasks) - len(pending)
        stats.jobs = jobs
        stats.chunks = 0

    if jobs == 1 or len(pending) <= 1:
        t0 = time.perf_counter()
        for index, task in pending:
            results[index] = fn(task)
        if stats is not None and pending:
            # One in-process heartbeat so serial sweeps report the same
            # fleet-telemetry shape as fanned-out ones.
            stats.worker_events.append({
                "chunk": 0, "lo": pending[0][0], "hi": pending[-1][0],
                "tasks": len(pending), "done": 1, "total": 1,
                "wall_s": time.perf_counter() - t0, "pid": os.getpid(),
            })
    else:
        spans = shard_tasks(len(pending), jobs, chunk_size)
        chunks = [pending[lo:hi] for lo, hi in spans]
        if stats is not None:
            stats.chunks = len(chunks)
        ctx = multiprocessing.get_context(
            start_method or default_start_method())
        workers = min(jobs, len(chunks))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=ctx) as pool:
            futures = [pool.submit(_run_chunk, fn, chunk)
                       for chunk in chunks]
            # Gather in submission order: completion order is
            # irrelevant because every result lands at its task index.
            for done, future in enumerate(futures, start=1):
                chunk_results, telemetry = future.result()
                for index, value in chunk_results:
                    results[index] = value
                if stats is not None:
                    stats.worker_events.append({
                        "chunk": done - 1, "done": done,
                        "total": len(futures), **telemetry,
                    })

    if cache is not None:
        for index, _task in pending:
            cache.put(keys[index], results[index])
    return results


def _sweep_supervised(fn: Callable[[Any], Any], tasks: List[Any],
                      jobs: int, *, cache: Optional[Any],
                      key_fn: Optional[Callable[[Any], str]],
                      chunk_size: Optional[int], start_method: str,
                      stats: Optional[SweepStats], policy: SweepPolicy,
                      journal_dir: Optional[str], resume: bool,
                      proc_faults: Optional[Any]) -> List[Any]:
    """Supervised body of :func:`sweep_map` (see its docstring)."""
    from repro.par.cache import stable_fingerprint
    from repro.par.journal import SweepJournal, journal_path

    if resume and (cache is None or journal_dir is None):
        raise ValueError(
            "resume requires both a cache (to restore completed shard "
            "values) and a journal_dir (to identify the sweep)")
    if cache is not None and key_fn is None:
        raise ValueError("cache requires a key_fn")
    if stats is None:
        stats = SweepStats()

    results: List[Any] = [None] * len(tasks)
    keys: List[Optional[str]] = [None] * len(tasks)
    pending: List[Tuple[int, Any]] = []
    if cache is not None:
        for index, task in enumerate(tasks):
            key = key_fn(task)
            keys[index] = key
            hit, value = cache.lookup(key)
            if hit:
                results[index] = value
            else:
                pending.append((index, task))
    else:
        pending = list(enumerate(tasks))

    stats.tasks = len(tasks)
    stats.executed = len(pending)
    stats.cache_hits = len(tasks) - len(pending)
    stats.jobs = jobs
    stats.chunks = 0

    journal: Optional[SweepJournal] = None
    if journal_dir is not None:
        sweep_id = stable_fingerprint(
            {"keys": keys} if cache is not None else {"n": len(tasks)})
        journal = SweepJournal(journal_path(journal_dir, sweep_id),
                               sweep_id, tasks=len(tasks), resume=resume)
        if journal.resumed:
            # shards the journal marks done *and* the cache restored
            done_indices = set(journal.done)
            restored = sum(
                1 for index in range(len(tasks))
                if index in done_indices and results[index] is not None)
            stats.resumed = restored
            stats.recovery("sweep_resume", done=restored,
                           tasks=len(tasks))

    def checkpoint(index: int, value: Any) -> None:
        # incremental: a kill after this line never loses the shard
        if cache is not None:
            cache.put(keys[index], value)
        if journal is not None:
            journal.shard_done(index, key=keys[index])

    try:
        if jobs == 1 or len(pending) <= 1:
            _supervised_serial(fn, pending, policy, stats, proc_faults,
                               checkpoint, results)
        else:
            supervisor = _Supervisor(fn, pending, jobs, chunk_size,
                                     start_method, policy, stats,
                                     proc_faults, checkpoint)
            gathered = supervisor.run()
            for index, value in gathered.items():
                results[index] = value
        for record in stats.quarantined:
            record["key"] = keys[record["index"]]
            if journal is not None:
                journal.event("task_quarantined", index=record["index"],
                              key=record["key"], reason=record["reason"],
                              error=record["error"])
        if journal is not None:
            journal.finish(
                completed=len(tasks) - len(stats.quarantined),
                quarantined=sorted(q["index"]
                                   for q in stats.quarantined))
    finally:
        if journal is not None:
            journal.close()

    if policy.strict and stats.quarantined:
        raise SweepQuarantineError(stats.quarantined)
    return results


def _supervised_serial(fn: Callable[[Any], Any],
                       pending: List[Tuple[int, Any]],
                       policy: SweepPolicy, stats: SweepStats,
                       proc_faults: Optional[Any],
                       checkpoint: Callable[[int, Any], None],
                       results: List[Any]) -> None:
    """In-process supervised loop (``jobs=1``).

    Raised exceptions (and injected ``raise`` faults) are retried and
    quarantined exactly like the pooled path.  Injected ``crash`` /
    ``hang`` faults act on *this* process — a crash genuinely kills the
    run (which is what checkpoint + resume recover from) and a hang
    sleeps; there is no out-of-process watchdog to fire.
    """
    rng = policy.rng()
    t0 = time.perf_counter()
    for index, task in pending:
        attempt = 0
        while True:
            error = None
            if proc_faults is not None:
                action = proc_faults.action(index, attempt + 1)
                if action == "crash":
                    os._exit(proc_faults.exit_code)
                elif action == "hang":
                    time.sleep(proc_faults.hang_seconds)
                elif action == "raise":
                    error = f"ProcFaultError: injected raise (task {index})"
            if error is None:
                try:
                    results[index] = fn(task)
                except BaseException as exc:  # noqa: BLE001
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    error = f"{type(exc).__name__}: {exc}"
                else:
                    checkpoint(index, results[index])
                    break
            attempt += 1
            if attempt > policy.retry.max_retries:
                stats.quarantined.append({
                    "index": index, "key": None, "reason": "error",
                    "error": error})
                stats.recovery("task_quarantined", index=index,
                               reason="error", error=error)
                break
            stats.retried += 1
            stats.recovery("chunk_retry", reason="error", action="retry",
                           lo=index, hi=index, tasks=1, attempt=attempt)
            delay = policy.backoff_delay(attempt - 1, rng)
            if delay > 0.0:
                time.sleep(delay)
    if pending:
        stats.worker_events.append({
            "chunk": 0, "lo": pending[0][0], "hi": pending[-1][0],
            "tasks": len(pending), "done": 1, "total": 1,
            "wall_s": time.perf_counter() - t0, "pid": os.getpid(),
        })
