"""Parallel sweep executor: deterministic fan-out over process pools.

Every expensive entry point in the repro (chaos sweeps, figure grids,
the SpMV suite, scenario model sweeps, the perf suite) is a loop over
**independent, pure** shard evaluations.  :func:`sweep_map` is the one
fan-out primitive they all share:

* **Serial fallback** — at ``jobs=1`` it is a plain in-process loop: no
  pool, no pickling, no extra allocation, so existing golden outputs
  stay bit-exact and single-core runs pay nothing.
* **Deterministic sharding** — tasks are split into *contiguous* chunks
  by :func:`shard_tasks` (a pure function of ``(n, jobs, chunk_size)``),
  so the work distribution never depends on scheduler timing.
* **Ordered gather** — results are re-assembled by task index, so the
  output list is **bit-identical** to the serial order regardless of
  worker count or completion order.
* **Spawn-safe** — the shard function must be a module-level callable
  and every task spec picklable; the pool start method defaults to the
  cheapest available (``fork`` on POSIX) but honours
  ``$REPRO_START_METHOD`` and the ``start_method=`` argument, and the
  test suite pins ``spawn`` compatibility.
* **Content-addressed caching** — pass a
  :class:`~repro.par.cache.ResultCache` plus a ``key_fn``; cache hits
  skip evaluation entirely and only misses are fanned out.  The parent
  writes results back to the cache after the ordered gather, so the
  disk tier needs no cross-process locking.

Worker count resolution (:func:`resolve_jobs`): explicit ``jobs``
argument, else ``$REPRO_JOBS``, else 1.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

#: environment variable supplying the default worker count
ENV_JOBS = "REPRO_JOBS"

#: environment variable overriding the multiprocessing start method
ENV_START_METHOD = "REPRO_START_METHOD"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: argument > ``$REPRO_JOBS`` > 1."""
    if jobs is None or jobs == 0:
        env = os.environ.get(ENV_JOBS, "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"${ENV_JOBS} must be a positive integer, got {env!r}"
            ) from None
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs!r}")
    return jobs


def default_start_method() -> str:
    """Cheapest safe start method (env override > fork > spawn)."""
    env = os.environ.get(ENV_START_METHOD, "").strip()
    if env:
        return env
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def shard_tasks(n: int, jobs: int,
                chunk_size: Optional[int] = None) -> List[Tuple[int, int]]:
    """Deterministic contiguous ``[start, stop)`` chunks covering ``n``.

    The default chunk size targets ~4 chunks per worker — small enough
    to balance uneven shard costs, large enough to amortize pickling —
    and depends only on ``(n, jobs, chunk_size)``, never on timing.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if n == 0:
        return []
    if chunk_size is None:
        chunk_size = max(1, -(-n // (4 * max(jobs, 1))))
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [(lo, min(lo + chunk_size, n)) for lo in range(0, n, chunk_size)]


@dataclass
class SweepStats:
    """Observability of one :func:`sweep_map` call (filled in place)."""

    tasks: int = 0          # total shards requested
    executed: int = 0       # shards actually evaluated (cache misses)
    cache_hits: int = 0     # shards served from the cache
    jobs: int = 0           # resolved worker count
    chunks: int = 0         # work units submitted to the pool (0 = serial)
    obs_payloads: List[Any] = field(default_factory=list)


def _run_chunk(fn: Callable[[Any], Any],
               chunk: List[Tuple[int, Any]]) -> List[Tuple[int, Any]]:
    """Worker body: evaluate one contiguous chunk of (index, task)."""
    return [(index, fn(task)) for index, task in chunk]


def sweep_map(fn: Callable[[Any], Any], tasks: Sequence[Any],
              jobs: Optional[int] = None, *,
              cache: Optional[Any] = None,
              key_fn: Optional[Callable[[Any], str]] = None,
              chunk_size: Optional[int] = None,
              start_method: Optional[str] = None,
              stats: Optional[SweepStats] = None) -> List[Any]:
    """``[fn(t) for t in tasks]`` with optional fan-out and caching.

    The result list is always in task order and bit-identical across
    worker counts (``fn`` must be a pure function of its task).  With
    ``jobs > 1``, ``fn`` must be module-level and each task picklable.
    Exceptions raised by ``fn`` propagate to the caller (the pool is
    shut down first).
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    results: List[Any] = [None] * len(tasks)
    keys: List[Optional[str]] = [None] * len(tasks)
    pending: List[Tuple[int, Any]] = []
    if cache is not None:
        if key_fn is None:
            raise ValueError("cache requires a key_fn")
        for index, task in enumerate(tasks):
            key = key_fn(task)
            keys[index] = key
            hit, value = cache.lookup(key)
            if hit:
                results[index] = value
            else:
                pending.append((index, task))
    else:
        pending = list(enumerate(tasks))

    if stats is not None:
        stats.tasks = len(tasks)
        stats.executed = len(pending)
        stats.cache_hits = len(tasks) - len(pending)
        stats.jobs = jobs
        stats.chunks = 0

    if jobs == 1 or len(pending) <= 1:
        for index, task in pending:
            results[index] = fn(task)
    else:
        spans = shard_tasks(len(pending), jobs, chunk_size)
        chunks = [pending[lo:hi] for lo, hi in spans]
        if stats is not None:
            stats.chunks = len(chunks)
        ctx = multiprocessing.get_context(
            start_method or default_start_method())
        workers = min(jobs, len(chunks))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=ctx) as pool:
            futures = [pool.submit(_run_chunk, fn, chunk)
                       for chunk in chunks]
            # Gather in submission order: completion order is
            # irrelevant because every result lands at its task index.
            for future in futures:
                for index, value in future.result():
                    results[index] = value

    if cache is not None:
        for index, _task in pending:
            cache.put(keys[index], results[index])
    return results
