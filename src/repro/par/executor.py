"""Parallel sweep executor: deterministic fan-out over process pools.

Every expensive entry point in the repro (chaos sweeps, figure grids,
the SpMV suite, scenario model sweeps, the perf suite) is a loop over
**independent, pure** shard evaluations.  :func:`sweep_map` is the one
fan-out primitive they all share:

* **Serial fallback** — at ``jobs=1`` it is a plain in-process loop: no
  pool, no pickling, no extra allocation, so existing golden outputs
  stay bit-exact and single-core runs pay nothing.
* **Deterministic sharding** — tasks are split into *contiguous* chunks
  by :func:`shard_tasks` (a pure function of ``(n, jobs, chunk_size)``),
  so the work distribution never depends on scheduler timing.
* **Ordered gather** — results are re-assembled by task index, so the
  output list is **bit-identical** to the serial order regardless of
  worker count or completion order.
* **Spawn-safe** — the shard function must be a module-level callable
  and every task spec picklable; the pool start method defaults to the
  cheapest available (``fork`` on POSIX) but honours
  ``$REPRO_START_METHOD`` and the ``start_method=`` argument, and the
  test suite pins ``spawn`` compatibility.
* **Content-addressed caching** — pass a
  :class:`~repro.par.cache.ResultCache` plus a ``key_fn``; cache hits
  skip evaluation entirely and only misses are fanned out.  The parent
  writes results back to the cache after the ordered gather, so the
  disk tier needs no cross-process locking.

Worker count resolution (:func:`resolve_jobs`): explicit ``jobs``
argument, else ``$REPRO_JOBS``, else 1.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: default straggler threshold: a chunk this many times slower than the
#: median chunk of its sweep is flagged (see :meth:`SweepStats.stragglers`)
STRAGGLER_FACTOR = 2.0

#: environment variable supplying the default worker count
ENV_JOBS = "REPRO_JOBS"

#: environment variable overriding the multiprocessing start method
ENV_START_METHOD = "REPRO_START_METHOD"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: argument > ``$REPRO_JOBS`` > 1."""
    if jobs is None or jobs == 0:
        env = os.environ.get(ENV_JOBS, "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"${ENV_JOBS} must be a positive integer, got {env!r}"
            ) from None
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs!r}")
    return jobs


def default_start_method() -> str:
    """Cheapest safe start method (env override > fork > spawn)."""
    env = os.environ.get(ENV_START_METHOD, "").strip()
    if env:
        return env
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def shard_tasks(n: int, jobs: int,
                chunk_size: Optional[int] = None) -> List[Tuple[int, int]]:
    """Deterministic contiguous ``[start, stop)`` chunks covering ``n``.

    The default chunk size targets ~4 chunks per worker — small enough
    to balance uneven shard costs, large enough to amortize pickling —
    and depends only on ``(n, jobs, chunk_size)``, never on timing.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if n == 0:
        return []
    if chunk_size is None:
        chunk_size = max(1, -(-n // (4 * max(jobs, 1))))
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [(lo, min(lo + chunk_size, n)) for lo in range(0, n, chunk_size)]


@dataclass
class SweepStats:
    """Observability of one :func:`sweep_map` call (filled in place).

    ``worker_events`` is the sweep's **fleet telemetry**: one
    heartbeat/progress record per gathered chunk —
    ``{"chunk", "lo", "hi", "tasks", "done", "total", "wall_s", "pid"}``
    — where ``done``/``total`` count chunks gathered so far (progress),
    ``wall_s`` is the chunk's measured in-worker wall clock and ``pid``
    the worker that ran it.  Task counts are deterministic; wall
    seconds and pids are not (the run ledger records them inside its
    non-deterministic envelope).
    """

    tasks: int = 0          # total shards requested
    executed: int = 0       # shards actually evaluated (cache misses)
    cache_hits: int = 0     # shards served from the cache
    jobs: int = 0           # resolved worker count
    chunks: int = 0         # work units submitted to the pool (0 = serial)
    obs_payloads: List[Any] = field(default_factory=list)
    worker_events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of shards served from the cache (0.0 when empty)."""
        return self.cache_hits / self.tasks if self.tasks else 0.0

    def stragglers(self, factor: float = STRAGGLER_FACTOR
                   ) -> List[Dict[str, Any]]:
        """Chunks at least ``factor`` x slower than the median chunk.

        Straggler detection needs a population to compare against:
        fewer than three timed chunks yields no flags.  The returned
        records are the matching :attr:`worker_events` entries.
        """
        if factor <= 1.0:
            raise ValueError(f"factor must be > 1, got {factor}")
        walls = sorted(ev["wall_s"] for ev in self.worker_events)
        if len(walls) < 3:
            return []
        median = walls[len(walls) // 2]
        if median <= 0.0:
            return []
        return [ev for ev in self.worker_events
                if ev["wall_s"] >= factor * median]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (fleet details under ``"fleet"``)."""
        return {
            "tasks": self.tasks,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "fleet": {
                "jobs": self.jobs,
                "chunks": self.chunks,
                "heartbeats": [dict(ev) for ev in self.worker_events],
                "stragglers": [ev["chunk"] for ev in self.stragglers()],
            },
        }


def _run_chunk(fn: Callable[[Any], Any], chunk: List[Tuple[int, Any]]
               ) -> Tuple[List[Tuple[int, Any]], Dict[str, Any]]:
    """Worker body: evaluate one contiguous chunk of (index, task).

    Returns the results plus the chunk's telemetry (task span, measured
    wall seconds, worker pid) for :attr:`SweepStats.worker_events`.
    """
    t0 = time.perf_counter()
    results = [(index, fn(task)) for index, task in chunk]
    telemetry = {
        "lo": chunk[0][0],
        "hi": chunk[-1][0],
        "tasks": len(chunk),
        "wall_s": time.perf_counter() - t0,
        "pid": os.getpid(),
    }
    return results, telemetry


def sweep_map(fn: Callable[[Any], Any], tasks: Sequence[Any],
              jobs: Optional[int] = None, *,
              cache: Optional[Any] = None,
              key_fn: Optional[Callable[[Any], str]] = None,
              chunk_size: Optional[int] = None,
              start_method: Optional[str] = None,
              stats: Optional[SweepStats] = None) -> List[Any]:
    """``[fn(t) for t in tasks]`` with optional fan-out and caching.

    The result list is always in task order and bit-identical across
    worker counts (``fn`` must be a pure function of its task).  With
    ``jobs > 1``, ``fn`` must be module-level and each task picklable.
    Exceptions raised by ``fn`` propagate to the caller (the pool is
    shut down first).
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    results: List[Any] = [None] * len(tasks)
    keys: List[Optional[str]] = [None] * len(tasks)
    pending: List[Tuple[int, Any]] = []
    if cache is not None:
        if key_fn is None:
            raise ValueError("cache requires a key_fn")
        for index, task in enumerate(tasks):
            key = key_fn(task)
            keys[index] = key
            hit, value = cache.lookup(key)
            if hit:
                results[index] = value
            else:
                pending.append((index, task))
    else:
        pending = list(enumerate(tasks))

    if stats is not None:
        stats.tasks = len(tasks)
        stats.executed = len(pending)
        stats.cache_hits = len(tasks) - len(pending)
        stats.jobs = jobs
        stats.chunks = 0

    if jobs == 1 or len(pending) <= 1:
        t0 = time.perf_counter()
        for index, task in pending:
            results[index] = fn(task)
        if stats is not None and pending:
            # One in-process heartbeat so serial sweeps report the same
            # fleet-telemetry shape as fanned-out ones.
            stats.worker_events.append({
                "chunk": 0, "lo": pending[0][0], "hi": pending[-1][0],
                "tasks": len(pending), "done": 1, "total": 1,
                "wall_s": time.perf_counter() - t0, "pid": os.getpid(),
            })
    else:
        spans = shard_tasks(len(pending), jobs, chunk_size)
        chunks = [pending[lo:hi] for lo, hi in spans]
        if stats is not None:
            stats.chunks = len(chunks)
        ctx = multiprocessing.get_context(
            start_method or default_start_method())
        workers = min(jobs, len(chunks))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=ctx) as pool:
            futures = [pool.submit(_run_chunk, fn, chunk)
                       for chunk in chunks]
            # Gather in submission order: completion order is
            # irrelevant because every result lands at its task index.
            for done, future in enumerate(futures, start=1):
                chunk_results, telemetry = future.result()
                for index, value in chunk_results:
                    results[index] = value
                if stats is not None:
                    stats.worker_events.append({
                        "chunk": done - 1, "done": done,
                        "total": len(futures), **telemetry,
                    })

    if cache is not None:
        for index, _task in pending:
            cache.put(keys[index], results[index])
    return results
