"""Parallel sweep execution and content-addressed result caching.

:func:`~repro.par.executor.sweep_map` fans independent shard
evaluations over a process pool with deterministic sharding and an
ordered gather (results bit-identical to serial order at any worker
count); :class:`~repro.par.cache.ResultCache` skips shards whose inputs
hash to an already-computed result.  See ``docs/api.md`` ("Parallel
sweeps & result cache").
"""

from repro.par.cache import (
    CACHE_SCHEMA,
    DEFAULT_CACHE_DIR,
    ENV_CACHE_DIR,
    ResultCache,
    cache_key,
    default_cache_dir,
    stable_fingerprint,
)
from repro.par.executor import (
    ENV_JOBS,
    ENV_START_METHOD,
    STRAGGLER_FACTOR,
    SweepStats,
    default_start_method,
    resolve_jobs,
    shard_tasks,
    sweep_map,
)

__all__ = [
    "CACHE_SCHEMA",
    "STRAGGLER_FACTOR",
    "DEFAULT_CACHE_DIR",
    "ENV_CACHE_DIR",
    "ENV_JOBS",
    "ENV_START_METHOD",
    "ResultCache",
    "SweepStats",
    "cache_key",
    "default_cache_dir",
    "default_start_method",
    "resolve_jobs",
    "shard_tasks",
    "stable_fingerprint",
    "sweep_map",
]
