"""Parallel sweep execution and content-addressed result caching.

:func:`~repro.par.executor.sweep_map` fans independent shard
evaluations over a process pool with deterministic sharding and an
ordered gather (results bit-identical to serial order at any worker
count); :class:`~repro.par.cache.ResultCache` skips shards whose inputs
hash to an already-computed result.  See ``docs/api.md`` ("Parallel
sweeps & result cache").

Supervised execution (watchdog, retry/quarantine, checkpoint–resume)
is opt-in via :class:`~repro.par.executor.SweepPolicy` and the
``journal_dir``/``resume`` arguments; see ``docs/resilience.md``
("Fault-tolerant sweeps").
"""

from repro.par.cache import (
    CACHE_SCHEMA,
    DEFAULT_CACHE_DIR,
    ENV_CACHE_DIR,
    ResultCache,
    cache_key,
    default_cache_dir,
    stable_fingerprint,
)
from repro.par.executor import (
    DEFAULT_SWEEP_RETRY,
    ENV_JOBS,
    ENV_START_METHOD,
    STRAGGLER_FACTOR,
    SweepPolicy,
    SweepQuarantineError,
    SweepStats,
    default_start_method,
    resolve_jobs,
    shard_tasks,
    sweep_map,
)
from repro.par.journal import (
    JOURNAL_SCHEMA,
    SweepJournal,
    journal_path,
    read_journal,
)

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_SWEEP_RETRY",
    "JOURNAL_SCHEMA",
    "STRAGGLER_FACTOR",
    "DEFAULT_CACHE_DIR",
    "ENV_CACHE_DIR",
    "ENV_JOBS",
    "ENV_START_METHOD",
    "ResultCache",
    "SweepJournal",
    "SweepPolicy",
    "SweepQuarantineError",
    "SweepStats",
    "cache_key",
    "default_cache_dir",
    "default_start_method",
    "journal_path",
    "read_journal",
    "resolve_jobs",
    "shard_tasks",
    "stable_fingerprint",
    "sweep_map",
]
