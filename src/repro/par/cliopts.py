"""Shared CLI plumbing for supervised sweep execution.

Every sweep-shaped entry point (``scenario``, ``report``, ``perf``,
``chaos``) exposes the same three supervision flags; this module keeps
their definitions and the flag → :class:`~repro.par.executor.SweepPolicy`
translation in one place so the semantics cannot drift between
subcommands.  ``chaos`` layers its own ``--proc-faults`` handling on
top (see :mod:`repro.faults.chaos`).
"""

from __future__ import annotations

import argparse
from typing import Any, Optional, Tuple

from repro.faults.plan import RetryPolicy
from repro.par.executor import DEFAULT_SWEEP_RETRY, SweepPolicy


def add_supervision_args(parser: argparse.ArgumentParser) -> None:
    """Add ``--max-retries`` / ``--task-timeout`` / ``--resume``.

    Giving any of them opts the sweep into supervised execution
    (watchdog, retry/quarantine, checkpoint–resume); omitting all three
    keeps the legacy zero-overhead fan-out.
    """
    parser.add_argument("--max-retries", type=int, default=None,
                        metavar="N",
                        help="supervised execution: retries before a "
                             "failing shard is quarantined (default "
                             f"{DEFAULT_SWEEP_RETRY.max_retries}); "
                             "giving this flag opts into supervision")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="supervised execution: per-shard wall-clock "
                             "budget enforced by the watchdog (default: "
                             "no deadline); giving this flag opts into "
                             "supervision")
    parser.add_argument("--resume", action="store_true",
                        help="resume a killed sweep: restore completed "
                             "shards from the result cache + sweep "
                             "journal and re-execute only the rest "
                             "(implies --cache)")


def supervision_from_args(ns: argparse.Namespace, cache: Optional[Any],
                          seed: int = 0, strict: bool = True
                          ) -> Tuple[Optional[SweepPolicy],
                                     Optional[str], bool]:
    """``(policy, journal_dir, resume)`` for :func:`repro.par.sweep_map`.

    Returns ``(None, None, False)`` when none of the supervision flags
    were given, so callers pass straight through to the legacy path.
    ``strict=True`` (the default for result-bearing sweeps like figure
    grids) re-raises quarantined shards at the end; the chaos harness
    uses ``strict=False`` to report them instead.
    """
    supervised = (ns.resume or ns.max_retries is not None
                  or ns.task_timeout is not None)
    if not supervised:
        return None, None, False
    retry = DEFAULT_SWEEP_RETRY
    if ns.max_retries is not None:
        retry = RetryPolicy(timeout=retry.timeout, backoff=retry.backoff,
                            backoff_cap=retry.backoff_cap,
                            max_retries=ns.max_retries)
    policy = SweepPolicy(task_timeout=ns.task_timeout, retry=retry,
                         seed=seed, strict=strict)
    journal_dir = cache.directory if cache is not None else None
    return policy, journal_dir, bool(ns.resume)
