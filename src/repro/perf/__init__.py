"""Performance-regression harness for the simulator itself.

Everything else in this package measures *virtual* time; this subsystem
measures the *wall clock* the simulator spends producing it, so speedups
(or regressions) of the DES kernel and the message-costing hot loop are
visible as numbers instead of anecdotes.

``python -m repro perf`` runs a fixed micro-suite and writes
``BENCH_repro.json``; see :mod:`repro.perf.suite`.
"""

from repro.perf.suite import (
    WorkloadResult,
    default_workloads,
    run_suite,
    write_report,
)

__all__ = [
    "WorkloadResult",
    "default_workloads",
    "run_suite",
    "write_report",
]
