"""Timed micro-suite over the simulator's hot paths.

The workloads cover the layers the optimisation work targets:

``engine``
    Raw DES kernel event throughput: many processes looping on
    zero-cost bookkeeping plus heap-scheduled timeouts.
``pingpong``
    The Table-2 refit (:func:`repro.benchpress.pingpong.fit_comm_table`)
    — message costing, protocol selection and the sweep-reuse path.
``spmv``
    One audikw-analog SpMV exchange per rep — the irregular
    many-message pattern the paper validates against (Figure 4.2).
``scenarios``
    The Figure-4.3 scenario grid over all strategy models — the
    vectorized analytic-model path.
``hop_plan``
    The hop-plan costing kernel: every strategy model's
    ``time_sweep`` (batched :data:`~repro.paths.kernel.ARRAY_OPS`
    evaluation) against point-wise scalar ``time`` calls over the same
    summaries — asserting bit-identity and that the vectorized coster
    keeps its PR-1 ``time_sweep`` speedup through the IR refactor.
``obs_overhead``
    A message-heavy alltoall exchange with the default
    :class:`~repro.obs.tracer.NullTracer` — guards the pay-for-what-
    you-use contract of :mod:`repro.obs` (tracing off must cost ~0).
``sweep_parallel``
    The chaos-smoke sweep through :func:`repro.par.sweep_map` — serial,
    fanned out over workers, and warm-cache — reporting the parallel
    and cached speedups over the serial baseline (and asserting all
    three reports stay byte-identical).
``des_batched``
    The struct-of-arrays DES fast path: identical seeded delay sets
    scheduled per-event (``sim.timeout`` loop) vs batched
    (:meth:`~repro.sim.engine.Simulator.schedule_ticks`), asserting the
    per-batch completion times are bit-identical and the batched path
    clears a ≥5x events/s floor.
``sweep_fused``
    Whole-sweep fused costing: every (strategy x scenario x size) cell
    through :func:`~repro.models.scenarios.fused_scenario_times` vs the
    point-wise scalar ``StrategyModel.time`` loop, asserting cell-wise
    bit-identity and a ≥10x sweep-cells/s floor.
``atlas_query``
    The precomputed regime-map atlas: every grid point answered through
    :meth:`~repro.atlas.index.AtlasIndex.lookup` vs exact
    :func:`~repro.models.scenarios.best_strategy` evaluation, asserting
    winner-for-winner exact agreement and a ≥50x queries/s floor (the
    atlas is built outside the timed region — it is the offline
    artifact).

Each workload reports its wall clock (best and median of ``repeats``)
plus a throughput metric (virtual events/sec, simulated messages/sec or
model evaluations/sec).  All workloads run the simulator with fixed
seeds, so the *virtual* results are deterministic; only the wall clock
varies.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

#: report schema version (bump when fields change meaning).
#: Schema 2 adds ``wall_median_s`` per workload (``wall_s`` keeps its
#: schema-1 best-of-repeats meaning) and the ``sweep_parallel``
#: workload, whose ``speedup_*`` metrics carry no ``_per_s`` companion.
#: Schema 3 adds the ``hop_plan`` workload and a top-level ``machine``
#: field naming the preset the suite ran on.
#: Schema 4 adds the ``des_batched`` and ``sweep_fused`` workloads
#: (each asserting bit-identity plus a speedup floor internally), and
#: keys already ending in ``_per_s`` no longer receive an automatic
#: ``_per_s`` companion.
#: Schema 5 adds the ``atlas_query`` workload (O(1) atlas lookups vs
#: exact ``best_strategy`` evaluation, with an exact-agreement check
#: and a queries/s speedup floor).
#: Schema 6 adds the ``hier_strategies`` workload: the full registry —
#: paper set plus the hierarchy-aware families — swept on the
#: multi-NIC ``frontier_like`` preset, asserting the fused coster stays
#: cell-wise bit-identical to the scalar models on *tiered* plans
#: (tier scales, NIC pinning, persistent channels, SETUP stages).
SCHEMA = 6

#: enforced speedup floors (ISSUE 6 acceptance criteria)
MIN_DES_BATCHED_SPEEDUP = 5.0
MIN_SWEEP_FUSED_SPEEDUP = 10.0

#: enforced atlas speedup floor (ISSUE 9 acceptance criterion)
MIN_ATLAS_QUERY_SPEEDUP = 50.0


@dataclass
class WorkloadResult:
    """Timing of one suite workload."""

    name: str
    wall_s: float              # best-of-repeats wall clock [s]
    repeats: int
    wall_median_s: float = 0.0  # median-of-repeats wall clock [s]
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def summary(self) -> str:
        extra = ", ".join(f"{k}={v:,.0f}" for k, v in self.metrics.items())
        return f"{self.name:14s} {self.wall_s * 1e3:9.1f} ms   {extra}"


def _find_strategy(label: str):
    """Strategy implementation by label, with a diagnosable failure.

    A bare ``next(...)`` over the registry raises an opaque
    ``StopIteration`` when the label is missing; this lookup names the
    label and every available strategy instead.
    """
    from repro.core import all_strategies

    strategies = {s.label: s for s in all_strategies()}
    if label not in strategies:
        raise ValueError(
            f"unknown strategy {label!r}; available: "
            f"{sorted(strategies)}")
    return strategies[label]


# ---------------------------------------------------------------------------
# Workloads — each returns {metric name: value} for the report
# ---------------------------------------------------------------------------
def _engine_workload(procs: int, timeouts: int) -> Callable[[], Dict[str, float]]:
    def run() -> Dict[str, float]:
        from repro.sim.engine import Simulator

        sim = Simulator()

        def worker(delay: float):
            for _ in range(timeouts):
                yield sim.timeout(delay)

        for p in range(procs):
            sim.process(worker(1e-6 * (p + 1)), label=f"w{p}")
        sim.run()
        # one start token per process + one event per timeout
        return {"events": procs * (timeouts + 1)}

    return run


def _pingpong_workload(iterations: int, n_points: int,
                       machine_name: str = "lassen"
                       ) -> Callable[[], Dict[str, float]]:
    def run() -> Dict[str, float]:
        from repro.benchpress.pingpong import fit_comm_table
        from repro.machine import resolve_machine
        from repro.mpi.job import SimJob

        machine = resolve_machine(machine_name)
        job = SimJob(machine, num_nodes=2,
                     ppn=min(machine.cores_per_node, 40))
        table = fit_comm_table(job, iterations=iterations, n_points=n_points)
        # each fitted path sweeps <= n_points sizes, one run each,
        # 2 * iterations messages per run
        msgs = sum(1 for _ in table) * n_points * 2 * iterations
        return {"messages": msgs}

    return run


def _spmv_workload(matrix_n: int, reps: int,
                   machine_name: str = "lassen"
                   ) -> Callable[[], Dict[str, float]]:
    from repro.machine import resolve_machine
    from repro.sparse.distributed import DistributedCSR
    from repro.sparse.suite import SUITE

    # Matrix assembly and partitioning are inputs to the simulator, not
    # part of it — build once, outside the timed region.
    machine = resolve_machine(machine_name)
    matrix = SUITE["audikw_1"].build(matrix_n)
    dist = DistributedCSR(matrix, num_gpus=2 * machine.gpus_per_node)
    v = np.random.default_rng(5).standard_normal(dist.n)
    strategy = _find_strategy("Standard (staged)")

    def run() -> Dict[str, float]:
        from repro.mpi.job import SimJob
        from repro.sparse.spmv import distributed_spmv

        job = SimJob(machine, num_nodes=2,
                     ppn=min(machine.cores_per_node, 40), seed=11)
        msgs = 0
        for _ in range(reps):
            msgs += distributed_spmv(job, dist, strategy, v).messages
        return {"messages": msgs}

    return run


def _scenario_workload(n_sizes: int,
                       dup_fractions: Tuple[float, ...],
                       jobs: Optional[int] = None,
                       machine_name: str = "lassen",
                       policy=None,
                       ) -> Callable[[], Dict[str, float]]:
    def run() -> Dict[str, float]:
        from repro.machine import resolve_machine
        from repro.models.scenarios import (
            PAPER_SCENARIOS,
            Scenario,
            sweep_scenarios,
        )

        machine = resolve_machine(machine_name)
        sizes = np.logspace(0, 7, n_sizes)
        scenarios = [Scenario(num_dest_nodes=base.num_dest_nodes,
                              num_messages=base.num_messages,
                              dup_fraction=dup)
                     for base in PAPER_SCENARIOS
                     for dup in dup_fractions]
        swept = sweep_scenarios(machine, scenarios, sizes, jobs=jobs,
                                policy=policy)
        evals = sum(len(out) * n_sizes for out in swept)
        return {"evals": evals}

    return run


def _hop_plan_workload(n_sizes: int, machine_name: str = "lassen"
                       ) -> Callable[[], Dict[str, float]]:
    """Shared costing kernel: batched vs point-wise plan evaluation.

    Every strategy model evaluates the same Figure-4.3 summaries twice —
    once through ``time_sweep`` (the hop-plan kernel with
    :data:`~repro.paths.kernel.ARRAY_OPS`) and once point-wise through
    scalar ``time`` calls.  The two must agree bit-for-bit, and the
    batched path must stay faster than the scalar loop: that is the
    PR 1 ``time_sweep`` win the IR refactor is not allowed to lose.
    """

    def run() -> Dict[str, float]:
        from repro.machine import resolve_machine
        from repro.models.scenarios import PAPER_SCENARIOS, scenario_summary
        from repro.models.strategies import all_strategy_models, model_label
        from repro.models.vectorized import SummaryBatch

        machine = resolve_machine(machine_name)
        sizes = np.logspace(0, 7, n_sizes)
        summaries = [scenario_summary(machine, sc, float(size))
                     for sc in PAPER_SCENARIOS for size in sizes]
        batch = SummaryBatch.from_summaries(summaries)
        models = all_strategy_models(machine)

        t0 = time.perf_counter()
        swept = {model_label(m): m.time_sweep(batch) for m in models}
        t_vec = time.perf_counter() - t0

        t0 = time.perf_counter()
        pointwise = {model_label(m): np.array([m.time(s) for s in summaries])
                     for m in models}
        t_scalar = time.perf_counter() - t0

        for label, vec in swept.items():
            if not np.array_equal(vec, pointwise[label]):
                raise AssertionError(
                    f"vectorized coster diverged from scalar for {label}")
        evals = len(models) * len(summaries)
        return {
            "evals": evals,
            "speedup_vectorized": t_scalar / t_vec if t_vec > 0 else 1.0,
        }

    return run


def _des_batched_workload(batches: int, per_batch: int,
                          min_speedup: float = MIN_DES_BATCHED_SPEEDUP
                          ) -> Callable[[], Dict[str, float]]:
    """SoA event kernel: per-event scheduling vs ``schedule_ticks``.

    Both arms fire the *same* seeded delay sets through the engine; the
    scalar arm pays one ``Timeout`` object plus one heap push per event,
    the batched arm one numpy merge per batch plus the anonymous-tick
    drain.  Per-batch final virtual times (and the completion-event
    time) must agree bit-for-bit, and the batched arm must clear the
    ``min_speedup`` events/s floor — the tentpole claim of the SoA
    rewrite, enforced on every suite run.
    """

    def run() -> Dict[str, float]:
        from repro.sim.engine import Simulator

        rng = np.random.default_rng(17)
        delay_sets = [rng.uniform(1e-7, 1e-3, per_batch)
                      for _ in range(batches)]

        sim = Simulator()
        scalar_times: List[float] = []
        t0 = time.perf_counter()
        for delays in delay_sets:
            for d in delays.tolist():
                sim.timeout(d)
            sim.run()
            scalar_times.append(sim.now)
            sim.reset()
        t_scalar = time.perf_counter() - t0

        sim = Simulator()
        batch_times: List[float] = []
        completion_times: List[float] = []
        t0 = time.perf_counter()
        for delays in delay_sets:
            handle = sim.schedule_ticks(delays, complete=True)
            completion = handle.completed
            completion.callbacks.append(
                lambda ev: completion_times.append(ev.sim.now))
            sim.run()
            batch_times.append(sim.now)
            sim.reset()
        t_batch = time.perf_counter() - t0

        if batch_times != scalar_times or completion_times != scalar_times:
            raise AssertionError(
                "batched DES times diverged from per-event scheduling: "
                f"{batch_times[:3]} vs {scalar_times[:3]}")
        events = batches * per_batch
        if sim.batched_fired != 0:  # reset() must clear the SoA counters
            raise AssertionError("reset() left batched_fired nonzero")
        speedup = t_scalar / t_batch if t_batch > 0 else float("inf")
        if speedup < min_speedup:
            raise AssertionError(
                f"batched DES speedup {speedup:.1f}x below the "
                f"{min_speedup:.0f}x floor "
                f"({events / t_scalar:,.0f} -> {events / t_batch:,.0f} ev/s)")
        return {
            "events": float(events),
            "batched_events_per_s": events / t_batch,
            "speedup_batched": speedup,
        }

    return run


def _sweep_fused_workload(n_sizes: int, dup_fractions: Tuple[float, ...],
                          machine_name: str = "lassen",
                          min_speedup: float = MIN_SWEEP_FUSED_SPEEDUP
                          ) -> Callable[[], Dict[str, float]]:
    """Fused multi-plan sweep vs the point-wise scalar model loop.

    Evaluates the full (strategy x scenario x size) grid once through
    :func:`~repro.models.scenarios.fused_scenario_times` (one kernel
    call over stacked plan tensors) and once through scalar
    ``StrategyModel.time`` per cell — the historical ``best_strategy``
    inner loop.  Cell-wise bit-identity and a ``min_speedup``
    sweep-cells/s floor are both hard assertions.
    """

    def run() -> Dict[str, float]:
        from dataclasses import replace

        from repro.machine import resolve_machine
        from repro.models.scenarios import (
            PAPER_SCENARIOS,
            fused_scenario_times,
            scenario_summary,
        )
        from repro.models.strategies import all_strategy_models

        machine = resolve_machine(machine_name)
        sizes = np.logspace(0, 7, n_sizes)
        scenarios = [replace(base, dup_fraction=dup)
                     for base in PAPER_SCENARIOS for dup in dup_fractions]
        models = all_strategy_models(machine)

        t0 = time.perf_counter()
        _labels, fused = fused_scenario_times(machine, scenarios, sizes,
                                              models)
        t_fused = time.perf_counter() - t0

        t0 = time.perf_counter()
        scalar = np.empty_like(fused)
        for c, scenario in enumerate(scenarios):
            summaries = [scenario_summary(machine, scenario, float(s))
                         for s in sizes]
            for i, model in enumerate(models):
                scalar[i, c] = [
                    model.time(s, dup_fraction=scenario.dup_fraction)
                    for s in summaries]
        t_scalar = time.perf_counter() - t0

        if not np.array_equal(fused, scalar):
            bad = int(np.count_nonzero(fused != scalar))
            raise AssertionError(
                f"fused sweep diverged from scalar costing in {bad} of "
                f"{fused.size} cells")
        cells = fused.size
        speedup = t_scalar / t_fused if t_fused > 0 else float("inf")
        if speedup < min_speedup:
            raise AssertionError(
                f"fused sweep speedup {speedup:.1f}x below the "
                f"{min_speedup:.0f}x floor "
                f"({cells / t_scalar:,.0f} -> {cells / t_fused:,.0f} "
                f"cells/s)")
        return {
            "cells": float(cells),
            "fused_cells_per_s": cells / t_fused,
            "speedup_fused": speedup,
        }

    return run


def _hier_strategies_workload(n_sizes: int,
                              machine_name: str = "frontier_like"
                              ) -> Callable[[], Dict[str, float]]:
    """Extended-family sweep on a tiered multi-NIC machine.

    Evaluates the *full* registry — paper set plus the hierarchy-aware
    families (3-Step H, Neighbor P, ML 3-Step) — on the multi-NIC
    ``frontier_like`` preset, where the extended plans carry tier
    indices, ``nics_used`` port pinning, pre-posted persistent channels
    and amortized SETUP stages.  The fused coster must stay cell-wise
    **bit-identical** to the scalar models on those tiered plans (the
    flat-degenerate identity is pinned by goldens; this guards the
    tiered operand tensors), asserted on every suite run.
    """

    def run() -> Dict[str, float]:
        from repro.machine import resolve_machine
        from repro.models.scenarios import (
            PAPER_SCENARIOS,
            fused_scenario_times,
            scenario_summary,
        )
        from repro.models.strategies import all_strategy_models

        machine = resolve_machine(machine_name)
        sizes = np.logspace(0, 7, n_sizes)
        models = all_strategy_models(machine, include_best_case=False,
                                     include_extended=True)

        t0 = time.perf_counter()
        _labels, fused = fused_scenario_times(machine, PAPER_SCENARIOS,
                                              sizes, models)
        t_fused = time.perf_counter() - t0

        scalar = np.empty_like(fused)
        for c, scenario in enumerate(PAPER_SCENARIOS):
            summaries = [scenario_summary(machine, scenario, float(s))
                         for s in sizes]
            for i, model in enumerate(models):
                scalar[i, c] = [model.time(s) for s in summaries]

        if not np.array_equal(fused, scalar):
            bad = int(np.count_nonzero(fused != scalar))
            raise AssertionError(
                f"fused coster diverged from scalar models on tiered "
                f"plans in {bad} of {fused.size} cells")
        cells = fused.size
        return {
            "cells": float(cells),
            "models": float(len(models)),
            "fused_cells_per_s": cells / t_fused,
        }

    return run


def _atlas_query_workload(smoke: bool, rounds: int,
                          machine_name: str = "lassen",
                          min_speedup: float = MIN_ATLAS_QUERY_SPEEDUP
                          ) -> Callable[[], Dict[str, float]]:
    """O(1) atlas lookups vs exact per-query evaluation.

    The atlas is built once at workload construction — it is the
    *offline* artifact, so its cost never lands in the timed region.
    The atlas arm answers every grid point ``rounds`` times through
    :meth:`~repro.atlas.index.AtlasIndex.lookup`; the exact arm answers
    each point once through :func:`~repro.models.scenarios.
    best_strategy` (which rebuilds the model registry and runs the
    fused kernel per query — the cost the atlas amortizes away).  The
    two winner sequences must agree exactly on every grid point, every
    lookup must be served from the atlas (no fallbacks on-grid), and
    the per-query speedup must clear the ``min_speedup`` floor — the
    tentpole claim of the atlas, enforced on every suite run.
    """
    from repro.atlas import build_atlas, default_grid
    from repro.machine import resolve_machine

    machine = resolve_machine(machine_name)
    spec = default_grid(smoke=smoke)
    atlas = build_atlas(machine, spec=spec)
    queries = [(spec.scenario_at(i, j, k), spec.sizes[l])
               for (i, j, k, l) in spec.points()]

    def run() -> Dict[str, float]:
        from repro.atlas import AtlasIndex
        from repro.models.scenarios import best_strategy

        index = AtlasIndex(atlas)
        t0 = time.perf_counter()
        atlas_winners: List[str] = []
        for _ in range(rounds):
            atlas_winners = [index.lookup(sc, size).winner
                             for sc, size in queries]
        t_atlas_q = (time.perf_counter() - t0) / (rounds * len(queries))

        t0 = time.perf_counter()
        exact_winners = [best_strategy(machine, sc, size)
                         for sc, size in queries]
        t_exact_q = (time.perf_counter() - t0) / len(queries)

        if atlas_winners != exact_winners:
            bad = sum(a != e for a, e in zip(atlas_winners, exact_winners))
            raise AssertionError(
                f"atlas winners diverged from exact evaluation on {bad} "
                f"of {len(queries)} grid points")
        counters = index.counters()
        if counters["atlas.hits"] != counters["atlas.lookups"]:
            raise AssertionError(
                f"on-grid atlas queries fell back to exact evaluation: "
                f"{counters}")
        speedup = t_exact_q / t_atlas_q if t_atlas_q > 0 else float("inf")
        if speedup < min_speedup:
            raise AssertionError(
                f"atlas query speedup {speedup:.1f}x below the "
                f"{min_speedup:.0f}x floor "
                f"({1.0 / t_exact_q:,.0f} -> {1.0 / t_atlas_q:,.0f} "
                f"queries/s)")
        return {
            "queries": float(rounds * len(queries)),
            "atlas_queries_per_s": 1.0 / t_atlas_q,
            "speedup_atlas": speedup,
        }

    return run


def _sweep_parallel_workload(par_jobs: int, machine_name: str = "lassen"
                             ) -> Callable[[], Dict[str, float]]:
    """Chaos-smoke sweep: serial vs ``par_jobs`` workers vs warm cache.

    Measures the sweep executor end to end on a real workload and
    asserts all three reports are byte-identical before reporting
    ``speedup_parallel`` (cold, ``--jobs par_jobs``) and
    ``speedup_cached`` (warm on-disk cache) over the serial baseline.
    On an N-core host the parallel speedup approaches
    ``min(par_jobs, N)``; the cached speedup is core-independent.
    """

    def run() -> Dict[str, float]:
        import shutil
        import tempfile

        from repro.faults.chaos import run_chaos
        from repro.par.cache import ResultCache

        t0 = time.perf_counter()
        base = run_chaos(seed=0, smoke=True, jobs=1, machine=machine_name)
        t_serial = time.perf_counter() - t0

        tmpdir = tempfile.mkdtemp(prefix="repro-sweep-bench-")
        try:
            t0 = time.perf_counter()
            cold = run_chaos(seed=0, smoke=True, jobs=par_jobs,
                             cache=ResultCache(directory=tmpdir),
                             machine=machine_name)
            t_parallel = time.perf_counter() - t0

            warm_cache = ResultCache(directory=tmpdir)
            t0 = time.perf_counter()
            warm = run_chaos(seed=0, smoke=True, jobs=par_jobs,
                             cache=warm_cache, machine=machine_name)
            t_warm = time.perf_counter() - t0
        finally:
            shutil.rmtree(tmpdir, ignore_errors=True)

        if cold != base or warm != base:
            raise AssertionError(
                "parallel/cached chaos reports diverged from serial")
        if warm_cache.misses:
            raise AssertionError(
                f"warm cache re-ran {warm_cache.misses} shards")
        return {
            "shards": float(base["summary"]["runs"]),
            "jobs": float(par_jobs),
            "speedup_parallel": t_serial / t_parallel,
            "speedup_cached": t_serial / t_warm,
        }

    return run


def _obs_overhead_workload(nodes: int, block: int, reps: int,
                           machine_name: str = "lassen"
                           ) -> Callable[[], Dict[str, float]]:
    from repro.core import CommPattern
    from repro.machine import resolve_machine

    # Pattern construction is input, not simulator — build it once.
    machine = resolve_machine(machine_name)
    num_gpus = nodes * machine.gpus_per_node
    sends = {
        s: {d: np.arange(block) for d in range(num_gpus) if d != s}
        for s in range(num_gpus)
    }
    pattern = CommPattern(num_gpus, sends)

    def run() -> Dict[str, float]:
        from repro.core import run_exchange, strategy_by_name
        from repro.mpi.job import SimJob

        # Default NullTracer: the untraced hot path must stay flat.
        strategy = strategy_by_name("Standard (staged)")
        job = SimJob(machine, num_nodes=nodes,
                     ppn=min(machine.cores_per_node, 40))
        msgs = 0
        for _ in range(reps):
            msgs += run_exchange(job, strategy, pattern).total_messages
        return {"messages": msgs}

    return run


def default_workloads(smoke: bool = False, jobs: Optional[int] = None,
                      machine: str = "lassen", policy=None,
                      ) -> List[Tuple[str, Callable[[], Dict[str, float]], int]]:
    """(name, workload, repeats) triples for the standard suite.

    ``jobs`` is threaded into the parallel-capable workloads; the
    ``sweep_parallel`` comparison arm uses ``jobs`` when it implies real
    fan-out, else 4 workers.  ``machine`` names the preset every
    machine-dependent workload runs on (resolved lazily per workload).
    ``policy`` (a :class:`repro.par.SweepPolicy`) runs the sweep-shaped
    ``scenarios`` workload under supervised execution, so its measured
    wall clock includes the supervision overhead.
    """
    par_jobs = jobs if jobs is not None and jobs > 1 else 4
    if smoke:
        return [
            ("engine", _engine_workload(procs=20, timeouts=100), 1),
            ("des_batched", _des_batched_workload(batches=2,
                                                  per_batch=12_000), 1),
            ("pingpong", _pingpong_workload(iterations=1, n_points=3,
                                            machine_name=machine), 1),
            ("spmv", _spmv_workload(matrix_n=1000, reps=1,
                                    machine_name=machine), 1),
            ("scenarios", _scenario_workload(16, (0.0,), jobs=jobs,
                                             machine_name=machine,
                                             policy=policy), 1),
            ("sweep_fused", _sweep_fused_workload(32, (0.0, 0.25),
                                                  machine_name=machine), 1),
            ("hier_strategies", _hier_strategies_workload(16), 1),
            ("atlas_query", _atlas_query_workload(smoke=True, rounds=20,
                                                  machine_name=machine), 1),
            ("hop_plan", _hop_plan_workload(16, machine_name=machine), 1),
            ("obs_overhead", _obs_overhead_workload(nodes=2, block=32, reps=1,
                                                    machine_name=machine), 1),
            ("sweep_parallel", _sweep_parallel_workload(
                par_jobs, machine_name=machine), 1),
        ]
    return [
        ("engine", _engine_workload(procs=200, timeouts=500), 3),
        ("des_batched", _des_batched_workload(batches=4,
                                              per_batch=50_000), 3),
        ("pingpong", _pingpong_workload(iterations=2, n_points=10,
                                        machine_name=machine), 3),
        ("spmv", _spmv_workload(matrix_n=4000, reps=3,
                                machine_name=machine), 3),
        ("scenarios", _scenario_workload(64, (0.0, 0.25), jobs=jobs,
                                         machine_name=machine,
                                         policy=policy), 3),
        ("sweep_fused", _sweep_fused_workload(64, (0.0, 0.25),
                                              machine_name=machine), 3),
        ("hier_strategies", _hier_strategies_workload(48), 3),
        ("atlas_query", _atlas_query_workload(smoke=False, rounds=5,
                                              machine_name=machine), 3),
        ("hop_plan", _hop_plan_workload(64, machine_name=machine), 3),
        ("obs_overhead", _obs_overhead_workload(nodes=4, block=256, reps=3,
                                                machine_name=machine), 3),
        ("sweep_parallel", _sweep_parallel_workload(
            par_jobs, machine_name=machine), 2),
    ]


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------
def run_suite(smoke: bool = False, verbose: bool = True,
              repeats: Optional[int] = None, jobs: Optional[int] = None,
              machine: str = "lassen",
              only: Optional[List[str]] = None,
              policy=None) -> List[WorkloadResult]:
    """Run the suite; ``wall_s`` is best-of-repeats, plus the median.

    ``repeats`` overrides every workload's default repeat count (more
    repeats tighten the min/median against scheduler noise); ``jobs``
    is forwarded to parallel-capable workloads; ``machine`` picks the
    preset the machine-dependent workloads model; ``only`` restricts
    the run to the named workloads (suite order is kept); ``policy``
    runs the sweep-shaped workloads under supervised execution.
    """
    if repeats is not None and repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    workloads = default_workloads(smoke=smoke, jobs=jobs, machine=machine,
                                  policy=policy)
    if only is not None:
        known = {name for name, _fn, _reps in workloads}
        unknown = [name for name in only if name not in known]
        if unknown:
            raise ValueError(
                f"unknown workload(s) {unknown}; available: "
                f"{sorted(known)}")
        wanted = set(only)
        workloads = [w for w in workloads if w[0] in wanted]
    results: List[WorkloadResult] = []
    for name, workload, default_reps in workloads:
        reps = repeats if repeats is not None else default_reps
        walls: List[float] = []
        metrics: Dict[str, float] = {}
        for _ in range(reps):
            t0 = time.perf_counter()
            metrics = workload()
            walls.append(time.perf_counter() - t0)
        best = min(walls)
        for key, value in list(metrics.items()):
            # ratios, configuration values and explicit rates get no
            # per-second companion — only volume-like counts do
            if ("speedup" not in key and key != "jobs"
                    and not key.endswith("_per_s")):
                metrics[f"{key}_per_s"] = value / best if best > 0 else 0.0
        result = WorkloadResult(name=name, wall_s=best, repeats=reps,
                                wall_median_s=statistics.median(walls),
                                metrics=metrics)
        results.append(result)
        if verbose:
            print(result.summary)
    if verbose:
        total = sum(r.wall_s for r in results)
        print(f"{'total':14s} {total * 1e3:9.1f} ms")
    return results


def write_report(results: List[WorkloadResult], path: str,
                 smoke: bool = False,
                 machine: str = "lassen") -> Dict[str, object]:
    """Serialize suite results to ``path`` (BENCH_repro.json schema)."""
    report: Dict[str, object] = {
        "suite": "repro.perf",
        "schema": SCHEMA,
        "smoke": smoke,
        "machine": machine,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "total_wall_s": sum(r.wall_s for r in results),
        "workloads": [asdict(r) for r in results],
    }
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    return report


def write_perf_ledger(ledger, results: List[WorkloadResult]) -> None:
    """Emit suite results into a :class:`repro.obs.RunLedger`.

    One ``workload`` record per suite entry.  Volume counts (events,
    messages, evals, cells, shards) are pure functions of the workload
    configuration and go in the deterministic section; measured wall
    clocks, every ``*_per_s`` rate, speedup ratios and the worker count
    are execution-shape facts and land in the ``wall`` envelope.
    """
    for r in results:
        deterministic: Dict[str, float] = {}
        wall: Dict[str, float] = {"wall_s": r.wall_s,
                                  "wall_median_s": r.wall_median_s}
        for key, value in r.metrics.items():
            if "per_s" in key or "speedup" in key or key == "jobs":
                wall[key] = value
            else:
                deterministic[key] = value
        ledger.event("workload", name=r.name, repeats=r.repeats,
                     wall=wall, **deterministic)


def compare_reports(baseline: Dict[str, object], current: Dict[str, object],
                    tolerance: float = 0.25) -> List[str]:
    """Regression messages for workloads slower than ``baseline``.

    Compares ``wall_median_s`` (falling back to ``wall_s`` for schema-1
    reports) over the workloads both reports contain; a workload
    regresses when its current median exceeds the baseline median by
    more than ``tolerance`` (fractional, default 25 % — wide enough for
    scheduler noise on shared CI runners, tight enough to catch a real
    hot-path regression).  Returns one human-readable message per
    regression; an empty list means the gate passes.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")

    def _by_name(report: Dict[str, object]) -> Dict[str, Dict[str, float]]:
        return {w["name"]: w for w in report.get("workloads", [])}

    def _wall(workload: Dict[str, float]) -> float:
        return float(workload.get("wall_median_s") or workload["wall_s"])

    base = _by_name(baseline)
    cur = _by_name(current)
    messages: List[str] = []
    if baseline.get("smoke") != current.get("smoke"):
        messages.append(
            "baseline and current reports ran different suite sizes "
            f"(baseline smoke={baseline.get('smoke')}, current "
            f"smoke={current.get('smoke')}); wall clocks are not "
            "comparable")
        return messages
    for name in [n for n in cur if n in base]:
        b, c = _wall(base[name]), _wall(cur[name])
        if b > 0 and c > b * (1.0 + tolerance):
            messages.append(
                f"{name}: wall_median_s {c:.6f} vs baseline {b:.6f} "
                f"(+{(c / b - 1.0) * 100:.0f}%, tolerance "
                f"{tolerance * 100:.0f}%)")
    return messages


def main(argv: Optional[List[str]] = None) -> int:
    """CLI body for ``python -m repro perf [--smoke] [--repeats N]
    [--jobs N] [--only NAMES] [--compare BASELINE.json] [-o OUT.json]``.

    With ``--compare`` the exit status is the regression gate: 0 when
    no workload regressed beyond ``--tolerance`` vs the baseline
    report, 1 otherwise — usable directly from CI or a pre-push hook.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro perf",
        description="Run the simulator performance micro-suite.")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workloads (CI wiring check, ~1 s)")
    parser.add_argument("-r", "--repeats", type=int, default=None,
                        help="override per-workload repeats; min/median "
                             "wall times are reported")
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="worker processes for parallel-capable "
                             "workloads (default: $REPRO_JOBS or serial)")
    parser.add_argument("--machine", default="lassen", metavar="PRESET",
                        help="machine preset the workloads model "
                             "(see `python -m repro info`)")
    parser.add_argument("--only", default=None, metavar="NAME[,NAME...]",
                        help="run only the named workloads "
                             "(comma-separated)")
    parser.add_argument("--compare", default=None, metavar="BASELINE.json",
                        help="compare against a previous report and exit "
                             "non-zero on regression")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="fractional wall-clock regression tolerance "
                             "for --compare (default: %(default)s)")
    parser.add_argument("-o", "--output", default="BENCH_repro.json",
                        help="report path (default: %(default)s)")
    parser.add_argument("--ledger", default=None, metavar="PATH",
                        help="write a JSONL run ledger here (consumed by "
                             "`python -m repro obs`)")
    from repro.par.cliopts import add_supervision_args, supervision_from_args

    add_supervision_args(parser)
    args = parser.parse_args(argv)
    if args.resume:
        # Perf workloads are stateless by design (each repeat must do
        # the full work); there is no sweep to resume.
        parser.error("--resume is not supported by the perf suite; "
                     "use --max-retries/--task-timeout for supervision")
    policy, _journal_dir, _resume = supervision_from_args(args, None)
    from repro.machine import resolve_machine

    machine = resolve_machine(args.machine).name  # fail fast, canonical name
    baseline = None
    if args.compare is not None:
        # Load before the (multi-second) run so a bad path fails fast.
        with open(args.compare) as fh:
            baseline = json.load(fh)
    only = ([name.strip() for name in args.only.split(",") if name.strip()]
            if args.only is not None else None)
    results = run_suite(smoke=args.smoke, repeats=args.repeats,
                        jobs=args.jobs, machine=machine, only=only,
                        policy=policy)
    report = write_report(results, args.output, smoke=args.smoke,
                          machine=machine)
    print(f"wrote {args.output}")
    if args.ledger:
        from repro.obs.ledger import RunLedger

        ledger = RunLedger(args.ledger, "perf",
                           {"smoke": args.smoke, "machine": machine,
                            "repeats": args.repeats,
                            "only": sorted(only) if only else None},
                           machine=machine)
        write_perf_ledger(ledger, results)
        ledger.finish("ok")
    if baseline is not None:
        regressions = compare_reports(baseline, report,
                                      tolerance=args.tolerance)
        if regressions:
            print(f"perf regression vs {args.compare}:")
            for message in regressions:
                print(f"  {message}")
            return 1
        print(f"no regressions vs {args.compare} "
              f"(tolerance {args.tolerance:.0%})")
    return 0
