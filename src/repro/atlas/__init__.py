"""Regime-map atlas: the precomputed best-strategy frontier.

Build once offline (``python -m repro atlas build``), query in O(1)
forever after::

    from repro import atlas
    answer = atlas.lookup("lassen", scenario, msg_size)
    answer.winner, answer.margin

See :mod:`repro.atlas.index` for query semantics (interpolation,
confidence margins, exact-evaluation fallback) and
:mod:`repro.atlas.artifact` for the on-disk format.
"""

from repro.atlas.artifact import (
    ATLAS_SCHEMA,
    Atlas,
    AtlasFormatError,
    decode_winner_runs,
    encode_winner_runs,
    load_atlas,
    read_header,
    save_atlas,
)
from repro.atlas.build import atlas_shard_key, build_atlas, build_tasks
from repro.atlas.grid import AtlasGridSpec, default_grid
from repro.atlas.index import (
    DEFAULT_MARGIN_BAND,
    AtlasIndex,
    AtlasLookup,
    lookup,
)

__all__ = [
    "ATLAS_SCHEMA",
    "Atlas",
    "AtlasFormatError",
    "AtlasGridSpec",
    "AtlasIndex",
    "AtlasLookup",
    "DEFAULT_MARGIN_BAND",
    "atlas_shard_key",
    "build_atlas",
    "build_tasks",
    "decode_winner_runs",
    "default_grid",
    "encode_winner_runs",
    "load_atlas",
    "lookup",
    "read_header",
    "save_atlas",
]
