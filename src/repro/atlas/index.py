"""O(1) atlas queries: interpolated winner + confidence margin.

:class:`AtlasIndex` answers "which strategy wins for this scenario?"
from the precomputed tensor alone: one bisection per axis, multilinear
interpolation **in log-space** (log node count, log message count, log
size; the bounded duplicate fraction interpolates linearly), argmin
over strategies, and a confidence margin derived from the gap to the
runner-up.  The kernel is never touched unless the query demands it:

* **on-grid queries** (every axis hits a lattice value exactly) are
  served straight from the stored tensor — those values *are* the fused
  kernel's outputs, so the winner matches exact evaluation bit-for-bit
  and no fallback can trigger;
* **interpolated queries** whose margin falls below the index's
  ``margin_band`` sit close to a crossover frontier, where interpolation
  may pick the wrong side — they fall back to exact fused evaluation;
* **out-of-hull queries** (outside the grid's bounding box on any axis)
  have no bracketing cell and always evaluate exactly.

Hit/fallback traffic is counted in an :class:`~repro.obs.metrics.
MetricsRegistry` (``atlas.lookups``, ``atlas.hits``,
``atlas.fallbacks.margin``, ``atlas.fallbacks.hull``), so a serving
layer can alert when its query mix drifts off the precomputed grid.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.atlas.artifact import Atlas
from repro.models.scenarios import Scenario
from repro.obs.metrics import MetricsRegistry

#: default half-width of the frontier band (fractional winner/runner-up
#: gap) below which an *interpolated* lookup re-evaluates exactly
DEFAULT_MARGIN_BAND = 0.05


@dataclass
class AtlasLookup:
    """One query's answer.

    ``margin`` is ``(runner_up - winner) / winner`` of the per-strategy
    times the answer was derived from — the fractional cost of picking
    the second-best strategy, i.e. the confidence in the winner
    (``inf`` with a single strategy).  ``source`` records how the
    answer was produced: ``"atlas"`` (stored or interpolated tensor),
    ``"exact-margin"`` (frontier-band fallback) or ``"exact-hull"``
    (outside the grid).
    """

    winner: str
    winner_idx: int
    margin: float
    times: np.ndarray  # per-strategy times, atlas label order
    source: str
    interpolated: bool

    @property
    def exact(self) -> bool:
        """True when the answer came from exact fused evaluation."""
        return self.source != "atlas"


def _locate(values: Sequence[float], logs: Sequence[float], x: float,
            log_axis: bool) -> Optional[Tuple[int, float]]:
    """Bracket ``x`` on one axis: ``(lower index, fractional weight)``.

    Weight 0.0 means an exact lattice hit (bitwise ``==`` against the
    stored axis value, so grid points never take the interpolation
    path).  ``None`` means ``x`` lies outside the axis hull.
    """
    if x < values[0] or x > values[-1]:
        return None
    pos = bisect_left(values, x)
    if pos < len(values) and values[pos] == x:
        return pos, 0.0
    i = pos - 1
    if log_axis:
        frac = ((math.log(x) - logs[i]) / (logs[i + 1] - logs[i]))
    else:
        frac = (x - values[i]) / (values[i + 1] - values[i])
    return i, frac


class AtlasIndex:
    """Query layer over one machine's :class:`~repro.atlas.artifact.Atlas`."""

    def __init__(self, atlas: Atlas,
                 margin_band: float = DEFAULT_MARGIN_BAND,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if margin_band < 0.0:
            raise ValueError(
                f"margin_band must be >= 0, got {margin_band!r}")
        self.atlas = atlas
        self.margin_band = float(margin_band)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        spec = atlas.spec
        self._axes: List[Tuple[List[float], List[float], bool]] = [
            (list(map(float, spec.node_counts)),
             [math.log(v) for v in spec.node_counts], True),
            (list(map(float, spec.msg_counts)),
             [math.log(v) for v in spec.msg_counts], True),
            (list(spec.dup_fractions), list(spec.dup_fractions), False),
            (list(spec.sizes), [math.log(v) for v in spec.sizes], True),
        ]
        self._times = atlas.times
        self._lookups = self.metrics.counter("atlas.lookups")
        self._hits = self.metrics.counter("atlas.hits")
        self._fb_margin = self.metrics.counter("atlas.fallbacks.margin")
        self._fb_hull = self.metrics.counter("atlas.fallbacks.hull")
        self._machine = None      # resolved lazily, only for fallback
        self._models = None

    # -- exact fallback ------------------------------------------------------
    def _exact_times(self, scenario: Scenario,
                     msg_size: float) -> np.ndarray:
        from repro.machine import resolve_machine
        from repro.models.scenarios import fused_scenario_times
        from repro.models.strategies import all_strategy_models, model_label

        if self._machine is None:
            self._machine = resolve_machine(self.atlas.machine)
            wanted = set(self.atlas.labels)
            models = [m for m in all_strategy_models(self._machine)
                      if model_label(m) in wanted]
            got = [model_label(m) for m in models]
            if got != self.atlas.labels:
                raise ValueError(
                    f"model registry no longer matches the atlas labels: "
                    f"{got} != {self.atlas.labels}; rebuild the atlas")
            self._models = models
        _labels, times = fused_scenario_times(
            self._machine, [scenario], [float(msg_size)], self._models)
        return times[:, 0, 0]

    @staticmethod
    def _answer(times: np.ndarray, labels: List[str], source: str,
                interpolated: bool) -> AtlasLookup:
        winner_idx = int(np.argmin(times))
        winner_time = float(times[winner_idx])
        if times.size > 1:
            runner_up = float(np.partition(times, 1)[1])
            margin = ((runner_up - winner_time) / winner_time
                      if winner_time > 0.0 else 0.0)
        else:
            margin = float("inf")
        return AtlasLookup(winner=labels[winner_idx],
                           winner_idx=winner_idx, margin=margin,
                           times=times, source=source,
                           interpolated=interpolated)

    # -- the query -----------------------------------------------------------
    def lookup(self, scenario: Scenario, msg_size: float) -> AtlasLookup:
        """Answer one query (see the module docstring for semantics)."""
        self._lookups.inc()
        coords = (float(scenario.num_dest_nodes),
                  float(scenario.num_messages),
                  float(scenario.dup_fraction), float(msg_size))
        located = []
        for x, (values, logs, log_axis) in zip(coords, self._axes):
            if len(values) == 1:
                loc = (0, 0.0) if values[0] == x else None
            else:
                loc = _locate(values, logs, x, log_axis)
            if loc is None:
                self._fb_hull.inc()
                times = self._exact_times(scenario, msg_size)
                return self._answer(times, self.atlas.labels,
                                    "exact-hull", False)
            located.append(loc)
        interp_axes = [a for a, (_i, frac) in enumerate(located)
                       if frac != 0.0]
        if not interp_axes:
            # On-grid: the stored values are the kernel's own outputs.
            i, j, k, l = (i for i, _f in located)  # noqa: E741
            times = self._times[:, i, j, k, l]
            self._hits.inc()
            return self._answer(times, self.atlas.labels, "atlas", False)
        # Multilinear interpolation over the bracketing corners, in
        # log(time) so the blend matches the axes' log-space geometry.
        log_times = np.zeros(self._times.shape[0])
        finite = True
        for corner in range(1 << len(interp_axes)):
            weight = 1.0
            idx = [i for i, _f in located]
            for bit, axis in enumerate(interp_axes):
                frac = located[axis][1]
                if corner >> bit & 1:
                    weight *= frac
                    idx[axis] += 1
                else:
                    weight *= 1.0 - frac
            cell = self._times[(slice(None),) + tuple(idx)]
            if not np.all(cell > 0.0):
                finite = False
                break
            log_times += weight * np.log(cell)
        if not finite:
            # degenerate stored times (empty cells) — interpolation is
            # meaningless here, answer exactly
            self._fb_margin.inc()
            times = self._exact_times(scenario, msg_size)
            return self._answer(times, self.atlas.labels,
                                "exact-margin", True)
        times = np.exp(log_times)
        answer = self._answer(times, self.atlas.labels, "atlas", True)
        if answer.margin < self.margin_band:
            # frontier band: the interpolated winner may sit on the
            # wrong side of the crossover — re-evaluate exactly
            self._fb_margin.inc()
            times = self._exact_times(scenario, msg_size)
            return self._answer(times, self.atlas.labels,
                                "exact-margin", True)
        self._hits.inc()
        return answer

    def query(self, num_dest_nodes: int, num_messages: int,
              msg_size: float, dup_fraction: float = 0.0) -> AtlasLookup:
        """:meth:`lookup` from plain numbers."""
        return self.lookup(Scenario(num_dest_nodes=int(num_dest_nodes),
                                    num_messages=int(num_messages),
                                    dup_fraction=float(dup_fraction)),
                           float(msg_size))

    def counters(self) -> Dict[str, int]:
        """Current hit/fallback counter values (plain ints)."""
        return {name: self.metrics.counter(name).value
                for name in ("atlas.lookups", "atlas.hits",
                             "atlas.fallbacks.margin",
                             "atlas.fallbacks.hull")}


#: process-wide default indexes for the convenience :func:`lookup`
_DEFAULT_INDEXES: Dict[str, AtlasIndex] = {}


def lookup(machine, scenario: Scenario, msg_size: float) -> AtlasLookup:
    """Library one-liner: ``atlas.lookup(machine, scenario, size)``.

    ``machine`` is a preset name or :class:`MachineSpec`.  The first
    query per machine builds (and memoizes) a default-grid index
    in-process; subsequent queries are pure O(1) lookups.  Serving
    layers wanting an on-disk artifact, custom grids or their own
    metrics registry should construct an :class:`AtlasIndex` directly.
    """
    from repro.atlas.build import build_atlas
    from repro.machine import resolve_machine

    spec = machine if hasattr(machine, "name") else resolve_machine(machine)
    index = _DEFAULT_INDEXES.get(spec.name)
    if index is None:
        index = AtlasIndex(build_atlas(spec))
        _DEFAULT_INDEXES[spec.name] = index
    return index.lookup(scenario, msg_size)
