"""Versioned on-disk atlas artifact.

One atlas is one file::

    RPRATLAS <canonical-JSON header>\\n<raw little-endian float64 tensor>

The header carries the schema version, machine name, grid axes, model
labels, the **winner-run-length encoding** of the crossover surface
(runs of ``[length, strategy_index]`` over the C-order flattened grid —
regime maps are large constant patches separated by thin frontiers, so
this is far smaller than a dense label grid), and the shape/dtype/
SHA-256 of the per-strategy time tensor that follows.  The tensor is
needed at query time for runner-up margins; the winners are derivable
from it (``argmin`` over strategies) and the loader verifies the two
agree, so a corrupt encoding can never serve wrong winners silently.

Everything is byte-deterministic: the header is ``canonical_dumps``
(sorted keys, compact, ``repr``-exact floats), the payload is the raw
tensor bytes, and there are no timestamps — two builds of the same grid
produce identical files at any ``--jobs`` value.  Writes are atomic
(temp file + ``os.replace``).  Every malformed-file condition — wrong
magic, unsupported schema, torn header, truncated or corrupted payload
— reads as a clean :class:`AtlasFormatError` naming the expected
schema, never as a stray pickle/JSON/numpy traceback.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.atlas.grid import AtlasGridSpec
from repro.obs.ledger import canonical_dumps

#: artifact format version — part of the header *and* of every build
#: shard's cache key, so a schema bump invalidates stale artifacts and
#: stale cached shards at once
ATLAS_SCHEMA = 1

#: leading file magic (followed by one space, the header, one newline)
MAGIC = b"RPRATLAS"

#: tensor storage dtype (explicit little-endian for cross-platform
#: byte-identity)
_TENSOR_DTYPE = "<f8"


class AtlasFormatError(ValueError):
    """An atlas artifact could not be read (wrong magic/schema, torn or
    truncated file, corrupted payload).  Always names the schema this
    reader expects, so version mismatches are diagnosable from the
    message alone."""

    def __init__(self, path: str, problem: str) -> None:
        self.path = path
        super().__init__(
            f"{path}: {problem} (atlas schema {ATLAS_SCHEMA} reader)")


def encode_winner_runs(winners_idx: np.ndarray) -> List[List[int]]:
    """Run-length encode a winner-index grid (C-order flattening).

    Returns ``[[run_length, strategy_index], ...]`` covering every cell
    exactly once.  The crossover *frontier* is precisely the set of run
    boundaries — regime patches compress to one run each.
    """
    flat = np.asarray(winners_idx).reshape(-1)
    if flat.size == 0:
        return []
    change = np.flatnonzero(np.diff(flat)) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [flat.size]))
    return [[int(e - s), int(flat[s])] for s, e in zip(starts, ends)]


def decode_winner_runs(runs: List[List[int]], shape: Tuple[int, ...],
                       ) -> np.ndarray:
    """Inverse of :func:`encode_winner_runs` (validates coverage)."""
    total = int(np.prod(shape)) if shape else 0
    counts = [int(r[0]) for r in runs]
    if sum(counts) != total:
        raise ValueError(
            f"winner runs cover {sum(counts)} cells, grid has {total}")
    flat = np.repeat(np.asarray([int(r[1]) for r in runs], dtype=np.int64),
                     counts)
    return flat.reshape(shape)


@dataclass
class Atlas:
    """One machine's precomputed best-strategy frontier.

    ``times`` has shape ``(len(labels),) + spec.shape`` — the modelled
    time of every strategy at every grid cell, bit-identical to the
    fused kernel's output for that cell.  ``winners_idx`` is its argmin
    over the strategy axis (ties to the earliest label, matching
    :func:`~repro.models.scenarios.best_strategy`).
    """

    machine: str
    spec: AtlasGridSpec
    labels: List[str]
    times: np.ndarray
    winners_idx: np.ndarray

    def __post_init__(self) -> None:
        expected = (len(self.labels),) + self.spec.shape
        if tuple(self.times.shape) != expected:
            raise ValueError(
                f"times tensor shape {self.times.shape} != "
                f"(labels,)+grid {expected}")
        if tuple(self.winners_idx.shape) != self.spec.shape:
            raise ValueError(
                f"winners_idx shape {self.winners_idx.shape} != grid "
                f"{self.spec.shape}")

    @property
    def cells(self) -> int:
        return self.spec.cells

    def frontier_cells(self) -> int:
        """Number of run boundaries in the winner encoding — a compact
        proxy for how much crossover structure the machine exhibits."""
        return max(0, len(encode_winner_runs(self.winners_idx)) - 1)

    def winner_counts(self) -> Dict[str, int]:
        """Cells won per strategy label (only strategies that win)."""
        idx, counts = np.unique(self.winners_idx, return_counts=True)
        return {self.labels[int(i)]: int(c) for i, c in zip(idx, counts)}


def save_atlas(atlas: Atlas, path: str) -> Dict[str, Any]:
    """Write ``atlas`` to ``path`` atomically; returns the header."""
    tensor = np.ascontiguousarray(atlas.times, dtype=_TENSOR_DTYPE)
    payload = tensor.tobytes()
    header = {
        "schema": ATLAS_SCHEMA,
        "machine": atlas.machine,
        "axes": atlas.spec.to_dict(),
        "labels": list(atlas.labels),
        "winners_rle": encode_winner_runs(atlas.winners_idx),
        "tensor": {
            "dtype": _TENSOR_DTYPE,
            "shape": list(tensor.shape),
            "nbytes": len(payload),
            "sha256": hashlib.sha256(payload).hexdigest(),
        },
    }
    blob = MAGIC + b" " + canonical_dumps(header).encode() + b"\n" + payload
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(blob)
    os.replace(tmp, path)
    return header


def read_header(path: str) -> Dict[str, Any]:
    """Parse and validate just the header line of an artifact."""
    with open(path, "rb") as fh:
        head = fh.readline()
    return _parse_header(path, head)


def _parse_header(path: str, head: bytes) -> Dict[str, Any]:
    if not head.startswith(MAGIC + b" "):
        raise AtlasFormatError(path, "not an atlas artifact (bad magic)")
    if not head.endswith(b"\n"):
        raise AtlasFormatError(path, "torn header (no terminating newline)")
    try:
        header = json.loads(head[len(MAGIC) + 1:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise AtlasFormatError(path, f"unreadable header ({exc})") from None
    if not isinstance(header, dict):
        raise AtlasFormatError(path, "header is not a JSON object")
    schema = header.get("schema")
    if schema != ATLAS_SCHEMA:
        raise AtlasFormatError(
            path, f"unsupported atlas schema {schema!r} "
                  f"(this reader expects {ATLAS_SCHEMA})")
    for key in ("machine", "axes", "labels", "winners_rle", "tensor"):
        if key not in header:
            raise AtlasFormatError(path, f"header missing {key!r}")
    return header


def load_atlas(path: str) -> Atlas:
    """Read an artifact back; inverse of :func:`save_atlas`."""
    with open(path, "rb") as fh:
        head = fh.readline()
        header = _parse_header(path, head)
        payload = fh.read()
    tensor_meta = header["tensor"]
    nbytes = int(tensor_meta["nbytes"])
    if len(payload) != nbytes:
        raise AtlasFormatError(
            path, f"truncated payload: {len(payload)} bytes on disk, "
                  f"header promises {nbytes}")
    digest = hashlib.sha256(payload).hexdigest()
    if digest != tensor_meta["sha256"]:
        raise AtlasFormatError(
            path, f"payload checksum mismatch ({digest[:12]}… != "
                  f"{tensor_meta['sha256'][:12]}…)")
    if tensor_meta["dtype"] != _TENSOR_DTYPE:
        raise AtlasFormatError(
            path, f"unsupported tensor dtype {tensor_meta['dtype']!r}")
    try:
        spec = AtlasGridSpec.from_dict(header["axes"])
    except (KeyError, TypeError, ValueError) as exc:
        raise AtlasFormatError(path, f"invalid grid axes ({exc})") from None
    labels = [str(label) for label in header["labels"]]
    shape = tuple(int(s) for s in tensor_meta["shape"])
    if shape != (len(labels),) + spec.shape:
        raise AtlasFormatError(
            path, f"tensor shape {shape} disagrees with labels+axes "
                  f"{(len(labels),) + spec.shape}")
    times = np.frombuffer(payload, dtype=_TENSOR_DTYPE).reshape(shape).copy()
    try:
        winners_idx = decode_winner_runs(header["winners_rle"], spec.shape)
    except (TypeError, ValueError, IndexError) as exc:
        raise AtlasFormatError(
            path, f"invalid winner encoding ({exc})") from None
    if winners_idx.size and (winners_idx.min() < 0
                             or winners_idx.max() >= len(labels)):
        raise AtlasFormatError(path, "winner index out of label range")
    if not np.array_equal(winners_idx, np.argmin(times, axis=0)):
        raise AtlasFormatError(
            path, "winner encoding disagrees with the time tensor's "
                  "argmin — corrupt artifact")
    return Atlas(machine=str(header["machine"]), spec=spec, labels=labels,
                 times=times, winners_idx=winners_idx)
