"""``python -m repro atlas`` — build, inspect and query atlases.

``build`` is a sweep-shaped command like ``scenario``/``report``: it
takes the shared ``--jobs`` / ``--cache`` / ``--ledger`` / supervision
flags, fans build shards through :func:`repro.par.sweep_map`, and
writes the byte-deterministic artifact (identical at any ``--jobs``
value; a killed build ``--resume``\\ s from the journal + cache).
``query`` loads an artifact and answers one scenario in O(1); ``info``
prints the header, winner distribution and frontier size without
touching the tensor payload semantics.
"""

from __future__ import annotations

import sys
from typing import List, Optional


def _build(args: List[str]) -> int:
    import argparse

    from repro.atlas.artifact import save_atlas
    from repro.atlas.build import build_atlas
    from repro.atlas.grid import default_grid
    from repro.machine import resolve_machine
    from repro.par.cache import ResultCache, default_cache_dir
    from repro.par.cliopts import add_supervision_args, supervision_from_args

    parser = argparse.ArgumentParser(
        prog="python -m repro atlas build",
        description="Precompute the best-strategy frontier for one "
                    "machine preset into an .atlas artifact.")
    parser.add_argument("--machine", default="lassen", metavar="PRESET",
                        help="machine preset (see `python -m repro info`)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid for CI/tests")
    parser.add_argument("-o", "--output", default=None, metavar="PATH",
                        help="artifact path (default atlas-<machine>.atlas)")
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="worker processes (default: $REPRO_JOBS or "
                             "serial); the artifact is byte-identical at "
                             "any value")
    parser.add_argument("--cache", action="store_true",
                        help="cache build shards on disk")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache directory (implies --cache)")
    parser.add_argument("--ledger", default=None, metavar="PATH",
                        help="write a JSONL run ledger here (consumed by "
                             "`python -m repro obs`)")
    add_supervision_args(parser)
    ns = parser.parse_args(args)
    machine = resolve_machine(ns.machine)
    spec = default_grid(smoke=ns.smoke)
    out = ns.output or f"atlas-{machine.name}.atlas"
    cache = None
    if ns.cache or ns.cache_dir or ns.resume:
        cache = ResultCache(directory=ns.cache_dir or default_cache_dir())
    policy, journal_dir, resume = supervision_from_args(ns, cache)
    stats = None
    ledger = None
    shard_done = None
    if ns.ledger:
        from repro.obs.ledger import RunLedger
        from repro.par.executor import SweepStats

        stats = SweepStats()
        ledger = RunLedger(ns.ledger, "atlas-build",
                           {"machine": machine.name, "smoke": ns.smoke},
                           machine=machine.name)
        tasks_meta = [(msgs, dup) for msgs in spec.msg_counts
                      for dup in spec.dup_fractions]

        def shard_done(index, shard):
            msgs, dup = tasks_meta[index]
            ledger.event("atlas_shard", msgs=msgs, dup=dup,
                         outcome="ok",
                         winners=sorted(set(
                             shard["labels"][i]
                             for i in shard["winners_idx"].reshape(-1))))

    atlas = build_atlas(machine, spec=spec, jobs=ns.jobs, cache=cache,
                        stats=stats, policy=policy, journal_dir=journal_dir,
                        resume=resume, shard_done=shard_done)
    header = save_atlas(atlas, out)
    if ledger is not None:
        if stats is not None:
            ledger.sweep(stats)
        if cache is not None:
            ledger.cache_events(cache)
        ledger.finish("ok", artifact=out,
                      payload_sha256=header["tensor"]["sha256"])
    n, m, d, z = spec.shape
    print(f"atlas: {machine.name}, {atlas.cells} cells "
          f"({n} nodes x {m} msgs x {d} dups x {z} sizes), "
          f"{len(atlas.labels)} strategies")
    print(f"frontier: {atlas.frontier_cells()} crossover boundaries")
    for label, count in sorted(atlas.winner_counts().items(),
                               key=lambda kv: -kv[1]):
        share = count / atlas.cells
        print(f"  {label:30s} wins {count:5d} cells ({share:6.1%})")
    print(f"wrote {out} (payload sha256 "
          f"{header['tensor']['sha256'][:12]}…)")
    return 0


def _query(args: List[str]) -> int:
    import argparse

    from repro.atlas.artifact import load_atlas
    from repro.atlas.index import DEFAULT_MARGIN_BAND, AtlasIndex

    parser = argparse.ArgumentParser(
        prog="python -m repro atlas query",
        description="Answer one best-strategy query from an atlas "
                    "artifact in O(1).")
    parser.add_argument("atlas", help="path to an .atlas artifact")
    parser.add_argument("nodes", type=int, help="destination node count")
    parser.add_argument("msgs", type=int, help="messages per node")
    parser.add_argument("size", type=float, help="bytes per message")
    parser.add_argument("--dup", type=float, default=0.0, metavar="F",
                        help="duplicate fraction (default 0)")
    parser.add_argument("--margin-band", type=float,
                        default=DEFAULT_MARGIN_BAND, metavar="F",
                        help="frontier band: interpolated lookups whose "
                             "winner/runner-up margin falls below this "
                             "re-evaluate exactly (default "
                             f"{DEFAULT_MARGIN_BAND})")
    ns = parser.parse_args(args)
    index = AtlasIndex(load_atlas(ns.atlas), margin_band=ns.margin_band)
    answer = index.query(ns.nodes, ns.msgs, ns.size, dup_fraction=ns.dup)
    print(f"scenario: {ns.nodes} nodes, {ns.msgs} msgs, {ns.size:g} B"
          + (f", {ns.dup:.1%} duplicates" if ns.dup else "")
          + f" on {index.atlas.machine}")
    print(f"winner: {answer.winner}")
    margin = ("inf" if answer.margin == float("inf")
              else f"{answer.margin:.1%}")
    print(f"margin: {margin} over the runner-up")
    how = {"atlas": ("interpolated from the atlas grid"
                     if answer.interpolated else "atlas grid point"),
           "exact-margin": "exact evaluation (inside the frontier band)",
           "exact-hull": "exact evaluation (outside the atlas grid)",
           }[answer.source]
    print(f"source: {answer.source} — {how}")
    order = sorted(range(len(answer.times)), key=lambda i: answer.times[i])
    for i in order:
        mark = "  <= best" if i == answer.winner_idx else ""
        print(f"  {index.atlas.labels[i]:30s} {answer.times[i]:.3e} s{mark}")
    return 0


def _info(args: List[str]) -> int:
    import argparse

    from repro.atlas.artifact import load_atlas

    parser = argparse.ArgumentParser(
        prog="python -m repro atlas info",
        description="Describe an atlas artifact.")
    parser.add_argument("atlas", help="path to an .atlas artifact")
    ns = parser.parse_args(args)
    atlas = load_atlas(ns.atlas)
    spec = atlas.spec
    print(f"machine: {atlas.machine}")
    print(f"cells:   {atlas.cells} "
          f"(nodes x msgs x dups x sizes = "
          f"{' x '.join(str(s) for s in spec.shape)})")
    print(f"nodes:   {', '.join(str(n) for n in spec.node_counts)}")
    print(f"msgs:    {', '.join(str(m) for m in spec.msg_counts)}")
    print(f"dups:    {', '.join(f'{d:g}' for d in spec.dup_fractions)}")
    print(f"sizes:   {spec.sizes[0]:g} .. {spec.sizes[-1]:g} B "
          f"({len(spec.sizes)} points)")
    print(f"strategies ({len(atlas.labels)}):")
    counts = atlas.winner_counts()
    for label in atlas.labels:
        count = counts.get(label, 0)
        print(f"  {label:30s} wins {count:5d} cells "
              f"({count / atlas.cells:6.1%})")
    print(f"frontier: {atlas.frontier_cells()} crossover boundaries")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    verbs = {"build": _build, "query": _query, "info": _info}
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: python -m repro atlas {build|query|info} ...\n"
              "  build  precompute a machine's best-strategy frontier\n"
              "  query  answer one scenario from an artifact in O(1)\n"
              "  info   describe an artifact")
        return 0
    verb = verbs.get(argv[0])
    if verb is None:
        print(f"unknown atlas verb {argv[0]!r} "
              f"(verbs: {', '.join(verbs)})", file=sys.stderr)
        return 2
    from repro.atlas.artifact import AtlasFormatError

    try:
        return verb(argv[1:])
    except AtlasFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
