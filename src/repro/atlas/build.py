"""Offline atlas construction.

One build shard is one ``(message count, duplicate fraction)`` slice of
the grid — a full :func:`~repro.models.regime_map.compute_regime_map`
over (node count x size), evaluated in a single fused kernel call.
Shards fan out through :func:`repro.par.sweep_map`, so a build inherits
``--jobs`` parallelism, the content-hashed result cache, supervised
checkpoint/resume and fleet telemetry for free; the ordered gather plus
the byte-deterministic artifact writer make the resulting file
byte-identical at any worker count.

Shard cache keys mix in :data:`~repro.atlas.artifact.ATLAS_SCHEMA` on
top of the machine constants and grid axes, so bumping the artifact
schema invalidates stale cached shards exactly like bumping
``CACHE_SCHEMA`` invalidates simulator results.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.atlas.artifact import ATLAS_SCHEMA, Atlas
from repro.atlas.grid import AtlasGridSpec, default_grid
from repro.machine.topology import MachineSpec
from repro.models.regime_map import compute_regime_map
from repro.par.cache import cache_key
from repro.par.executor import sweep_map

#: one build task: (machine, node_counts, sizes, msg_count, dup_fraction)
_ShardSpec = Tuple[MachineSpec, Tuple[int, ...], Tuple[float, ...], int,
                   float]


def atlas_shard_key(task: _ShardSpec) -> str:
    """Content hash of one build shard (includes the artifact schema)."""
    machine, node_counts, sizes, msg_count, dup = task
    return cache_key(
        "atlas-shard",
        atlas_schema=ATLAS_SCHEMA,
        machine=machine,
        node_counts=node_counts,
        sizes=np.asarray(sizes, dtype=np.float64),
        msg_count=msg_count,
        dup_fraction=dup,
    )


def _atlas_shard(task: _ShardSpec) -> Dict[str, Any]:
    """Module-level worker (picklable): one (msgs, dup) regime slice."""
    machine, node_counts, sizes, msg_count, dup = task
    rm = compute_regime_map(machine, sizes=list(sizes),
                            node_counts=node_counts,
                            num_messages=msg_count, dup_fraction=dup,
                            keep_times=True)
    # the atlas consumes the regime map's array view directly
    return {"labels": rm.labels, "winners_idx": rm.winners_idx,
            "times": rm.times}


def build_tasks(machine: MachineSpec,
                spec: AtlasGridSpec) -> List[_ShardSpec]:
    """The build's shard list, in deterministic (msgs, dup) order."""
    return [(machine, spec.node_counts, spec.sizes, msg_count, dup)
            for msg_count in spec.msg_counts
            for dup in spec.dup_fractions]


def build_atlas(machine: MachineSpec,
                spec: Optional[AtlasGridSpec] = None,
                jobs: Optional[int] = None,
                cache: Optional[Any] = None,
                stats: Optional[Any] = None,
                policy: Optional[Any] = None,
                journal_dir: Optional[str] = None,
                resume: bool = False,
                shard_done: Optional[Callable[[int, Dict[str, Any]], None]]
                = None) -> Atlas:
    """Sweep the full grid and assemble the :class:`Atlas`.

    ``jobs`` / ``cache`` / ``stats`` / ``policy`` / ``journal_dir`` /
    ``resume`` are forwarded to :func:`repro.par.sweep_map` unchanged
    (see its docstring); the assembled atlas — and hence the saved
    artifact — is bit-identical across all of them.  ``shard_done``
    (if given) observes each gathered shard in task order, e.g. to
    write per-shard ledger records.
    """
    spec = spec if spec is not None else default_grid()
    tasks = build_tasks(machine, spec)
    shards = sweep_map(_atlas_shard, tasks, jobs=jobs, cache=cache,
                       key_fn=atlas_shard_key if cache is not None else None,
                       stats=stats, policy=policy, journal_dir=journal_dir,
                       resume=resume)
    labels = list(shards[0]["labels"])
    n_nodes, n_msgs, n_dups, n_sizes = spec.shape
    times = np.empty((len(labels), n_nodes, n_msgs, n_dups, n_sizes),
                     dtype=np.float64)
    winners = np.empty(spec.shape, dtype=np.int64)
    for index, shard in enumerate(shards):
        if shard["labels"] != labels:
            raise ValueError(
                f"shard {index} evaluated a different model registry: "
                f"{shard['labels']} != {labels}")
        j, k = divmod(index, n_dups)
        times[:, :, j, k, :] = shard["times"]
        winners[:, j, k, :] = shard["winners_idx"]
        if shard_done is not None:
            shard_done(index, shard)
    return Atlas(machine=machine.name, spec=spec, labels=labels,
                 times=times, winners_idx=winners)
