"""Atlas grid specification: the scenario lattice an atlas precomputes.

An atlas covers the full (node-count x message-count x duplicate-
fraction x message-size) scenario space of one machine preset with a
**rectilinear** grid, so the query layer can bracket any point with one
bisection per axis and interpolate multilinearly.  Axes must be
strictly increasing, and every message count must be at least the
largest node count — the same constraint :class:`~repro.models.
scenarios.Scenario` enforces (one message per destination node), stated
up front so no grid cell is silently clamped to a different scenario
than its coordinates claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.models.scenarios import Scenario


def _check_axis(name: str, values: Tuple, minimum=None) -> None:
    if not values:
        raise ValueError(f"AtlasGridSpec.{name} must not be empty")
    if any(b <= a for a, b in zip(values, values[1:])):
        raise ValueError(
            f"AtlasGridSpec.{name} must be strictly increasing, got "
            f"{values!r}")
    if minimum is not None and values[0] < minimum:
        raise ValueError(
            f"AtlasGridSpec.{name} values must be >= {minimum}, got "
            f"{values!r}")


@dataclass(frozen=True)
class AtlasGridSpec:
    """Axes of one atlas build (see module docstring for invariants)."""

    node_counts: Tuple[int, ...] = (2, 4, 8, 16, 32)
    msg_counts: Tuple[int, ...] = (32, 64, 128, 256, 512)
    dup_fractions: Tuple[float, ...] = (0.0, 0.125, 0.25)
    sizes: Tuple[float, ...] = tuple(float(s) for s in np.logspace(1, 6, 11))

    def __post_init__(self) -> None:
        object.__setattr__(self, "node_counts",
                           tuple(int(n) for n in self.node_counts))
        object.__setattr__(self, "msg_counts",
                           tuple(int(m) for m in self.msg_counts))
        object.__setattr__(self, "dup_fractions",
                           tuple(float(d) for d in self.dup_fractions))
        object.__setattr__(self, "sizes",
                           tuple(float(s) for s in self.sizes))
        _check_axis("node_counts", self.node_counts, minimum=1)
        _check_axis("msg_counts", self.msg_counts, minimum=1)
        _check_axis("dup_fractions", self.dup_fractions, minimum=0.0)
        _check_axis("sizes", self.sizes)
        if self.sizes[0] <= 0.0:
            raise ValueError(
                f"AtlasGridSpec.sizes must be positive (log-space "
                f"interpolation), got {self.sizes!r}")
        if self.dup_fractions[-1] >= 1.0:
            raise ValueError(
                f"AtlasGridSpec.dup_fractions must stay below 1.0, got "
                f"{self.dup_fractions!r}")
        if self.msg_counts[0] < self.node_counts[-1]:
            raise ValueError(
                f"every msg_count must be >= the largest node_count "
                f"({self.node_counts[-1]}) so each cell is a valid "
                f"scenario; got msg_counts={self.msg_counts!r}")

    # -- shape ---------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int, int, int]:
        """(nodes, msgs, dups, sizes) tensor shape of the grid."""
        return (len(self.node_counts), len(self.msg_counts),
                len(self.dup_fractions), len(self.sizes))

    @property
    def cells(self) -> int:
        n, m, d, z = self.shape
        return n * m * d * z

    def scenario_at(self, node_idx: int, msg_idx: int,
                    dup_idx: int) -> Scenario:
        """The scenario of one (node, msg, dup) lattice point."""
        return Scenario(num_dest_nodes=self.node_counts[node_idx],
                        num_messages=self.msg_counts[msg_idx],
                        dup_fraction=self.dup_fractions[dup_idx])

    def points(self) -> Iterator[Tuple[int, int, int, int]]:
        """Every grid index tuple, in C (row-major) order."""
        n, m, d, z = self.shape
        for i in range(n):
            for j in range(m):
                for k in range(d):
                    for l in range(z):  # noqa: E741 — axis index
                        yield (i, j, k, l)

    def to_dict(self) -> dict:
        """Plain-JSON axes (the artifact header's ``axes`` object)."""
        return {
            "node_counts": list(self.node_counts),
            "msg_counts": list(self.msg_counts),
            "dup_fractions": list(self.dup_fractions),
            "sizes": list(self.sizes),
        }

    @classmethod
    def from_dict(cls, axes: dict) -> "AtlasGridSpec":
        return cls(node_counts=tuple(axes["node_counts"]),
                   msg_counts=tuple(axes["msg_counts"]),
                   dup_fractions=tuple(axes["dup_fractions"]),
                   sizes=tuple(axes["sizes"]))


def default_grid(smoke: bool = False) -> AtlasGridSpec:
    """The standard atlas lattice (``smoke`` shrinks it for CI/tests)."""
    if smoke:
        return AtlasGridSpec(
            node_counts=(4, 16),
            msg_counts=(32, 256),
            dup_fractions=(0.0, 0.25),
            sizes=tuple(float(s) for s in np.logspace(1, 6, 5)),
        )
    return AtlasGridSpec()
