"""Exporters: Chrome trace-event / Perfetto JSON, NIC utilization, text.

The primary exporter, :func:`to_chrome_trace`, turns one or more
:class:`~repro.obs.tracer.MemoryTracer` recordings into the Chrome
trace-event *JSON object format* — loadable directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* each tracer becomes one *process* (pid) — comparing two strategies
  side by side is one trace with two pids;
* each track (``rank0``, ``nic[1]``, ``rank3/phase``, ``engine``, ...)
  becomes one named, sort-indexed *thread* (tid) within its pid;
* spans become complete events (``ph: "X"``) carrying their ``args``;
* instants become ``ph: "i"`` and counter samples ``ph: "C"``;
* virtual seconds are exported as microseconds (the format's unit).

:func:`nic_utilization` is the resource-occupancy sampler: it bins NIC
byte-server spans into a busy-fraction time series per NIC track, which
:func:`to_chrome_trace` also embeds as counter tracks so the injection
ceiling is visible as a utilization graph alongside the message Gantt.

:func:`validate_chrome_trace` is the schema check used by the CLI, the
tests and CI: structural field checks plus the monotonic-``ts``
ordering guarantee the exporter makes.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs.tracer import MemoryTracer, SpanRecord

#: exporter schema version, embedded under ``otherData``
SCHEMA = 1

#: microseconds per simulated second (trace-event ``ts`` unit)
_US = 1e6

#: span category emitted by the NIC byte-server instrumentation
NIC_CATEGORY = "nic"

TracerMap = Union[MemoryTracer, Mapping[str, MemoryTracer]]


def _as_map(tracers: TracerMap) -> "Dict[str, MemoryTracer]":
    if isinstance(tracers, MemoryTracer):
        return {"sim": tracers}
    if not tracers:
        raise ValueError("no tracers to export")
    return dict(tracers)


def _track_order(track: str) -> Tuple[int, str]:
    """Stable display order: ranks, phase lanes, NICs, then the rest."""
    if track.startswith("rank"):
        return (0 if "/" not in track else 1, track)
    if track.startswith("nic") or track.startswith("gpu-nic"):
        return (2, track)
    return (3, track)


def nic_utilization(tracer: MemoryTracer, nbins: int = 60,
                    span: Optional[Tuple[float, float]] = None
                    ) -> Dict[str, object]:
    """Busy-fraction time series for every NIC byte-server track.

    Returns ``{"edges": [nbins+1 bin edges], "series": {track: [busy
    fraction per bin]}}``.  ``span`` overrides the sampled window
    (default: the full extent of the tracer's NIC spans).
    """
    if nbins < 1:
        raise ValueError(f"nbins must be >= 1, got {nbins}")
    nic_spans = [s for s in tracer.spans if s.cat == NIC_CATEGORY]
    if not nic_spans:
        return {"edges": [], "series": {}}
    if span is None:
        t0 = min(s.t0 for s in nic_spans)
        t1 = max(s.t1 for s in nic_spans)
    else:
        t0, t1 = span
    width = max((t1 - t0) / nbins, 1e-30)
    edges = [t0 + i * width for i in range(nbins + 1)]
    series: Dict[str, List[float]] = {}
    for s in nic_spans:
        busy = series.setdefault(s.track, [0.0] * nbins)
        lo = max(int((s.t0 - t0) / width), 0)
        hi = min(int((s.t1 - t0) / width), nbins - 1)
        for i in range(lo, hi + 1):
            b0 = edges[i]
            b1 = b0 + width
            busy[i] += max(0.0, min(s.t1, b1) - max(s.t0, b0))
    for busy in series.values():
        for i, t in enumerate(busy):
            busy[i] = min(t / width, 1.0)
    return {"edges": edges, "series": series}


def to_chrome_trace(tracers: TracerMap,
                    utilization_bins: int = 60) -> Dict[str, object]:
    """Export tracer recordings as a Chrome trace-event JSON object.

    ``tracers`` is either one :class:`MemoryTracer` or a mapping of
    process label -> tracer (one pid per entry).  Events are globally
    sorted by ``ts``; metadata events lead the list.
    """
    by_pid = _as_map(tracers)
    meta: List[dict] = []
    events: List[dict] = []
    for pid, (label, tracer) in enumerate(sorted(by_pid.items()), start=1):
        meta.append({"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                     "args": {"name": label}})
        tids = {track: tid for tid, track in
                enumerate(sorted(tracer.tracks(), key=_track_order), start=1)}
        for track, tid in tids.items():
            meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                         "tid": tid, "args": {"name": track}})
            meta.append({"name": "thread_sort_index", "ph": "M", "pid": pid,
                         "tid": tid, "args": {"sort_index": tid}})
        for s in tracer.spans:
            ev = {"name": s.name, "cat": s.cat or "span", "ph": "X",
                  "ts": s.t0 * _US, "dur": (s.t1 - s.t0) * _US,
                  "pid": pid, "tid": tids[s.track]}
            if s.args:
                ev["args"] = dict(s.args)
            events.append(ev)
        for i in tracer.instants:
            ev = {"name": i.name, "cat": i.cat or "instant", "ph": "i",
                  "ts": i.t * _US, "s": "t",
                  "pid": pid, "tid": tids[i.track]}
            if i.args:
                ev["args"] = dict(i.args)
            events.append(ev)
        for c in tracer.counters:
            events.append({"name": c.name, "cat": "counter", "ph": "C",
                           "ts": c.t * _US, "pid": pid,
                           "tid": tids[c.track],
                           "args": {c.name: c.value}})
        # Derived NIC-utilization counter track (one graph per NIC).
        util = nic_utilization(tracer, nbins=utilization_bins)
        for track, busy in sorted(util["series"].items()):  # type: ignore[union-attr]
            for edge, frac in zip(util["edges"], busy):  # type: ignore[arg-type]
                events.append({"name": f"{track} util", "cat": "counter",
                               "ph": "C", "ts": edge * _US, "pid": pid,
                               "tid": tids[track],
                               "args": {"utilization": round(frac, 4)}})
    events.sort(key=lambda e: e["ts"])
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs", "schema": SCHEMA},
    }


def write_chrome_trace(path: str, trace: Dict[str, object]) -> None:
    """Serialize an exported trace to ``path`` (compact JSON)."""
    with open(path, "w") as fh:
        json.dump(trace, fh, separators=(",", ":"))
        fh.write("\n")


def validate_chrome_trace(trace: object) -> int:
    """Validate exporter output; returns the non-metadata event count.

    Checks the structural contract the exporter makes — required keys,
    per-phase field requirements, non-negative durations, and globally
    monotonic ``ts`` over non-metadata events.  Raises ``ValueError``
    with a specific message on the first violation.
    """
    if not isinstance(trace, dict):
        raise ValueError(f"trace must be a JSON object, got {type(trace).__name__}")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    last_ts = float("-inf")
    counted = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for key in ("name", "ph", "pid"):
            if key not in ev:
                raise ValueError(f"traceEvents[{i}] missing {key!r}")
        ph = ev["ph"]
        if ph == "M":
            continue
        if "ts" not in ev or "tid" not in ev:
            raise ValueError(f"traceEvents[{i}] ({ph!r}) missing ts/tid")
        ts = ev["ts"]
        if ts < last_ts:
            raise ValueError(
                f"traceEvents[{i}]: ts {ts} < previous {last_ts} "
                f"(events must be time-sorted)")
        last_ts = ts
        if ph == "X":
            if ev.get("dur", -1) < 0:
                raise ValueError(f"traceEvents[{i}]: X event needs dur >= 0")
        elif ph == "C":
            if not isinstance(ev.get("args"), dict) or not ev["args"]:
                raise ValueError(f"traceEvents[{i}]: C event needs args")
        elif ph != "i":
            raise ValueError(f"traceEvents[{i}]: unexpected phase {ph!r}")
        counted += 1
    return counted


# ---------------------------------------------------------------------------
# Text report
# ---------------------------------------------------------------------------
def _span_stats(spans: Sequence[SpanRecord]) -> Tuple[int, float]:
    return len(spans), sum(s.duration for s in spans)


def render_text_report(tracers: TracerMap,
                       metrics: Optional[Mapping[str, Mapping]] = None,
                       max_tracks: int = 12) -> str:
    """Human-readable per-run summary of a recording.

    ``metrics`` optionally maps run label -> ``SimJob.metrics()`` dict;
    headline counters are folded into the report.
    """
    lines: List[str] = []
    for label, tracer in sorted(_as_map(tracers).items()):
        lines.append(f"=== {label} ===")
        lines.append(f"records: {len(tracer.spans)} spans, "
                     f"{len(tracer.instants)} instants, "
                     f"{len(tracer.counters)} counter samples")
        by_track: Dict[str, List[SpanRecord]] = {}
        for s in tracer.spans:
            by_track.setdefault(s.track, []).append(s)
        busiest = sorted(by_track.items(),
                         key=lambda kv: -_span_stats(kv[1])[1])[:max_tracks]
        for track, spans in busiest:
            n, busy = _span_stats(spans)
            lines.append(f"  {track:>16s}  {n:>6d} spans  "
                         f"busy {busy:.3e} s")
        util = nic_utilization(tracer)
        for track, busy in sorted(util["series"].items()):  # type: ignore[union-attr]
            peak = max(busy) if busy else 0.0
            mean = sum(busy) / len(busy) if busy else 0.0
            lines.append(f"  {track:>16s}  utilization mean "
                         f"{mean:5.1%}  peak {peak:5.1%}")
        if metrics and label in metrics:
            counters = metrics[label].get("counters", {})
            for key in ("transport.messages", "transport.bytes_sent",
                        "transport.off_node.messages", "engine.steps"):
                if key in counters:
                    lines.append(f"  {key:>28s} = {counters[key]:,}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
