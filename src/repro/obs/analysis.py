"""``python -m repro obs`` — analyze run ledgers and perf reports.

Subcommands
-----------
``obs report <ledger|BENCH.json>``
    One-page summary of a run: header (run id, command, machine, git),
    per-strategy/per-phase cost breakdown, latency histograms with
    p50/p95/p99, cache hit rate, fleet telemetry (workers, chunk
    heartbeats, stragglers) and — for supervised sweeps — a recovery
    section (retries, pool respawns, resumed shards, quarantined
    tasks).
``obs diff <A> <B>``
    **Regression attribution** between two artifacts.  For two perf
    reports it generalizes :func:`repro.perf.suite.compare_reports`
    into a full per-workload delta table plus the gate messages; for
    two ledgers it ranks the (scenario, strategy) cells whose cost
    moved and attributes the largest mover to the strategy *phase*
    carrying the change.
``obs flame <ledger>``
    Collapsed-stack output (``flamegraph.pl`` / speedscope format) from
    the ledger's sampling-profiler stacks when the run used
    ``--profile``, else synthesized from the recorded per-phase virtual
    times.
``obs validate <ledger>``
    Structural schema check (:func:`repro.obs.ledger.validate_ledger`);
    non-zero exit on violation — CI runs this on every uploaded ledger.

Also home of :func:`hotspots`, the span-aggregation primitive behind
the per-phase tables ("where did the virtual time go"), shared by
``repro trace --report`` and the ledger writers.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.ledger import (
    ENVELOPE_KEY,
    read_ledger,
    split_runs,
    validate_ledger,
)

#: default row limit for top-N tables
DEFAULT_TOP = 10


# ---------------------------------------------------------------------------
# Hotspot attribution over spans
# ---------------------------------------------------------------------------
def _track_kind(track: str) -> str:
    """Normalize a track name to its kind: rank / phase / nic / other."""
    if track.startswith("rank"):
        return "phase" if track.endswith("/phase") else "rank"
    if track.startswith("nic") or track.startswith("gpu-nic"):
        return "nic"
    return track


def hotspots(tracer_or_spans: Any,
             top: Optional[int] = DEFAULT_TOP) -> List[Dict[str, Any]]:
    """Aggregate spans into a top-N wall table by (track kind, name).

    Accepts a :class:`~repro.obs.tracer.MemoryTracer` or any iterable
    of :class:`~repro.obs.tracer.SpanRecord`.  Rows carry ``kind``
    (normalized track family), ``name``, ``count``, ``total_s`` and
    ``mean_s``, sorted by descending total virtual time (ties broken by
    name, so the table is deterministic).  ``top=None`` returns all
    rows.
    """
    spans = getattr(tracer_or_spans, "spans", tracer_or_spans)
    agg: Dict[Tuple[str, str], List[float]] = {}
    for s in spans:
        cell = agg.setdefault((_track_kind(s.track), s.name), [0, 0.0])
        cell[0] += 1
        cell[1] += s.t1 - s.t0
    rows = [
        {"kind": kind, "name": name, "count": int(count),
         "total_s": total, "mean_s": total / count if count else 0.0}
        for (kind, name), (count, total) in agg.items()
    ]
    rows.sort(key=lambda r: (-r["total_s"], r["kind"], r["name"]))
    return rows[:top] if top is not None else rows


def render_hotspots(rows: Sequence[Mapping[str, Any]],
                    title: str = "hotspots (virtual time)") -> str:
    """ASCII table for a :func:`hotspots` row list."""
    lines = [f"=== {title} ==="]
    if not rows:
        lines.append("  (no spans recorded)")
        return "\n".join(lines)
    width = max(len(f"{r['kind']}/{r['name']}") for r in rows)
    for r in rows:
        label = f"{r['kind']}/{r['name']}"
        lines.append(f"  {label:<{width}s}  {r['count']:>7d} spans  "
                     f"total {r['total_s']:.3e} s  "
                     f"mean {r['mean_s']:.3e} s")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Artifact loading
# ---------------------------------------------------------------------------
def load_artifact(path: str) -> Tuple[str, Any]:
    """Load ``path`` as ``("perf", report)`` or ``("ledger", records)``.

    A file whose entire content is one JSON object with
    ``"suite": "repro.perf"`` is a BENCH_repro.json perf report;
    anything else must parse as a JSONL run ledger.
    """
    with open(path) as fh:
        text = fh.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict):
        if data.get("suite") == "repro.perf":
            return "perf", data
        raise ValueError(
            f"{path}: JSON object is neither a repro.perf report nor a "
            f"JSONL ledger")
    records = read_ledger(path)
    validate_ledger(records)
    return "ledger", records


class LedgerSummary:
    """Indexed view of one run's records (the last run in the file)."""

    def __init__(self, records: Sequence[Mapping[str, Any]]) -> None:
        runs = split_runs(records)
        if not runs:
            raise ValueError("ledger holds no records")
        run = runs[-1]
        self.header: Dict[str, Any] = dict(run[0])
        self.end: Dict[str, Any] = (dict(run[-1])
                                    if run[-1].get("event") == "run_end"
                                    else {})
        self.cells: Dict[Tuple[Any, str], Dict[str, Any]] = {}
        self.workloads: Dict[str, Dict[str, Any]] = {}
        self.metrics: Dict[str, Dict[str, Any]] = {}
        self.cache: Optional[Dict[str, Any]] = None
        self.cache_corrupt: List[Dict[str, Any]] = []
        self.cache_repair: List[Dict[str, Any]] = []
        self.sweeps: List[Dict[str, Any]] = []
        self.fleet: List[Dict[str, Any]] = []
        self.heartbeats: List[Dict[str, Any]] = []
        self.worker_lost: List[Dict[str, Any]] = []
        self.chunk_retries: List[Dict[str, Any]] = []
        self.quarantined: List[Dict[str, Any]] = []
        self.resumes: List[Dict[str, Any]] = []
        self.recovery: Optional[Dict[str, Any]] = None
        self.span_summaries: List[Dict[str, Any]] = []
        self.profile_stacks: List[Dict[str, Any]] = []
        for record in run[1:]:
            kind = record.get("event")
            if kind == "cell":
                key = (record.get("scenario"), record.get("strategy"))
                self.cells[key] = dict(record)
            elif kind == "workload":
                self.workloads[record["name"]] = dict(record)
            elif kind == "metrics":
                self.metrics[record.get("name", "metrics")] = \
                    record["snapshot"]
            elif kind == "cache":
                self.cache = dict(record)
            elif kind == "cache_corrupt":
                self.cache_corrupt.append(dict(record))
            elif kind == "cache_repair":
                self.cache_repair.append(dict(record))
            elif kind == "sweep":
                self.sweeps.append(dict(record))
            elif kind == "fleet":
                self.fleet.append(dict(record))
            elif kind == "heartbeat":
                self.heartbeats.append(dict(record))
            elif kind == "worker_lost":
                self.worker_lost.append(dict(record))
            elif kind == "chunk_retry":
                self.chunk_retries.append(dict(record))
            elif kind == "task_quarantined":
                self.quarantined.append(dict(record))
            elif kind == "sweep_resume":
                self.resumes.append(dict(record))
            elif kind == "recovery":
                self.recovery = dict(record)
            elif kind == "span_summary":
                self.span_summaries.append(dict(record))
            elif kind == "profile_stack":
                self.profile_stacks.append(dict(record))

    @property
    def run_id(self) -> str:
        return self.header.get("run_id", "?")

    @property
    def cmd(self) -> str:
        return self.header.get("cmd", "?")

    @property
    def args(self) -> Dict[str, Any]:
        return dict(self.header.get("args", {}))

    def cell_time(self, key: Tuple[Any, str]) -> Optional[float]:
        cell = self.cells.get(key)
        if cell is None:
            return None
        t = cell.get("time_s")
        return float(t) if t is not None else None

    def phase_totals(self, key: Tuple[Any, str]) -> Dict[str, float]:
        cell = self.cells.get(key, {})
        phases = cell.get("phases") or {}
        return {name: float(p["total_s"]) for name, p in phases.items()}


# ---------------------------------------------------------------------------
# obs report
# ---------------------------------------------------------------------------
def _histogram_lines(name: str, hist: Mapping[str, Any],
                     bar_width: int = 30) -> List[str]:
    lines = [f"  {name}: n={hist['count']}, mean={hist['mean']:.3e}, "
             f"p50={hist['p50']:.3e}, p95={hist['p95']:.3e}, "
             f"p99={hist['p99']:.3e}"]
    counts = hist.get("counts", [])
    bounds = hist.get("buckets", [])
    peak = max(counts) if counts else 0
    if peak:
        for i, n in enumerate(counts):
            if n == 0:
                continue
            label = (f"<= {bounds[i]:.1e}" if i < len(bounds)
                     else f" > {bounds[-1]:.1e}")
            bar = "#" * max(1, int(bar_width * n / peak))
            lines.append(f"    {label:>12s} {bar} {n}")
    return lines


def render_report(kind: str, data: Any, top: int = DEFAULT_TOP) -> str:
    """Text body of ``obs report`` for a loaded artifact."""
    lines: List[str] = []
    if kind == "perf":
        lines.append(f"perf report: schema {data.get('schema')}, "
                     f"machine {data.get('machine')}, "
                     f"smoke={data.get('smoke')}")
        for w in data.get("workloads", []):
            lines.append(f"  {w['name']:<16s} wall {w['wall_s']:.4f} s "
                         f"(median {w.get('wall_median_s', 0.0):.4f} s, "
                         f"{w['repeats']} repeats)")
        return "\n".join(lines)

    summary = LedgerSummary(data)
    head = summary.header
    lines.append(f"run {summary.run_id}: repro {summary.cmd} "
                 f"(schema {head.get('schema')}, "
                 f"machine {head.get('machine', '-')}, "
                 f"git {head.get('git', '-')}, "
                 f"status {summary.end.get('status', '?')})")
    if summary.args:
        args = ", ".join(f"{k}={v}" for k, v in sorted(summary.args.items()))
        lines.append(f"  args: {args}")

    if summary.cells:
        lines.append("")
        lines.append("=== per-strategy breakdown ===")
        by_strategy: Dict[str, List[Dict[str, Any]]] = {}
        for (_scenario, strategy), cell in summary.cells.items():
            by_strategy.setdefault(strategy, []).append(cell)
        width = max(len(s) for s in by_strategy)
        rows = []
        for strategy, cells in by_strategy.items():
            times = [float(c["time_s"]) for c in cells
                     if c.get("time_s") is not None]
            outcomes = [c.get("outcome", "ok") for c in cells]
            not_ok = sum(1 for o in outcomes if o != "ok")
            total = sum(times)
            rows.append((total, strategy, len(cells), not_ok, times))
        rows.sort(key=lambda r: (-r[0], r[1]))
        for total, strategy, n, not_ok, times in rows:
            worst = max(times) if times else 0.0
            lines.append(
                f"  {strategy:<{width}s}  {n:>3d} cells  "
                f"total {total:.3e} s  worst {worst:.3e} s"
                + (f"  [{not_ok} not ok]" if not_ok else ""))

        phase_totals: Dict[str, List[float]] = {}
        for key in summary.cells:
            for name, t in summary.phase_totals(key).items():
                phase_totals.setdefault(name, [0, 0.0])
                phase_totals[name][0] += 1
                phase_totals[name][1] += t
        if phase_totals:
            lines.append("")
            lines.append("=== per-phase breakdown (virtual time) ===")
            ranked = sorted(phase_totals.items(),
                            key=lambda kv: (-kv[1][1], kv[0]))[:top]
            pw = max(len(name) for name, _ in ranked)
            for name, (count, total) in ranked:
                lines.append(f"  {name:<{pw}s}  {count:>4d} cells  "
                             f"total {total:.3e} s")

    if summary.workloads:
        lines.append("")
        lines.append("=== workloads ===")
        for name, w in summary.workloads.items():
            wall = (w.get(ENVELOPE_KEY) or {}).get("wall_s")
            wall_txt = f"wall {wall:.4f} s" if wall is not None else "wall -"
            metrics = {k: v for k, v in w.items()
                       if isinstance(v, (int, float)) and k != "repeats"}
            extra = ", ".join(f"{k}={v:,.0f}" for k, v in
                              sorted(metrics.items()))
            lines.append(f"  {name:<16s} {wall_txt}  {extra}")

    if summary.span_summaries:
        lines.append("")
        lines.append("=== span hotspots (virtual time) ===")
        ranked = sorted(summary.span_summaries,
                        key=lambda r: (-r["total_s"], r["name"]))[:top]
        for r in ranked:
            lines.append(f"  {r.get('kind', '-')}/{r['name']:<20s} "
                         f"{r['count']:>7d} spans  "
                         f"total {r['total_s']:.3e} s")

    for name, snapshot in summary.metrics.items():
        hists = snapshot.get("histograms", {})
        if hists:
            lines.append("")
            lines.append(f"=== latency/size histograms ({name}) ===")
            for hname, hist in sorted(hists.items()):
                lines.extend(_histogram_lines(hname, hist))
        counters = snapshot.get("counters", {})
        if counters:
            lines.append("")
            lines.append(f"=== counters ({name}) ===")
            ranked = sorted(counters.items(),
                            key=lambda kv: (-kv[1], kv[0]))[:top]
            cw = max(len(k) for k, _ in ranked)
            for key, value in ranked:
                lines.append(f"  {key:<{cw}s} = {value:,}")

    if summary.cache is not None:
        lines.append("")
        lines.append("=== result cache ===")
        c = summary.cache
        lines.append(f"  hits {c['hits']}, misses {c['misses']}, "
                     f"stores {c['stores']}, corrupt {c['corrupt']}, "
                     f"repaired {c.get('repaired', 0)}, "
                     f"hit rate {c['hit_rate']:.1%}")
        for ev in summary.cache_corrupt:
            lines.append(f"  CORRUPT entry: {ev['key']}")
        for ev in summary.cache_repair:
            lines.append(f"  repaired (deleted) entry: {ev['key']}")

    if summary.sweeps or summary.heartbeats:
        lines.append("")
        lines.append("=== sweep fleet ===")
        for sweep in summary.sweeps:
            env = sweep.get(ENVELOPE_KEY) or {}
            executed = sweep.get("executed", env.get("executed"))
            cache_hits = sweep.get("cache_hits", env.get("cache_hits"))
            lines.append(f"  tasks {sweep['tasks']}, executed "
                         f"{executed}, cache hits {cache_hits}")
        for fleet in summary.fleet:
            stragglers = fleet.get("stragglers", [])
            lines.append(f"  jobs {fleet.get('jobs')}, chunks "
                         f"{fleet.get('chunks')}"
                         + (f", STRAGGLER chunks: {stragglers}"
                            if stragglers else ", no stragglers"))
        walls = [(hb.get(ENVELOPE_KEY) or {}).get("wall_s")
                 for hb in summary.heartbeats]
        walls = [w for w in walls if w is not None]
        if walls:
            walls.sort()
            lines.append(f"  {len(walls)} heartbeats, chunk wall "
                         f"min {walls[0]:.3f} s / median "
                         f"{walls[len(walls) // 2]:.3f} s / max "
                         f"{walls[-1]:.3f} s")

    if (summary.recovery or summary.worker_lost or summary.chunk_retries
            or summary.quarantined or summary.resumes):
        lines.append("")
        lines.append("=== recovery ===")
        rec = summary.recovery or {}
        lines.append(f"  retried {rec.get('retried', 0)}, pool respawns "
                     f"{rec.get('respawns', 0)}, resumed shards "
                     f"{rec.get('resumed', 0)}, quarantined "
                     f"{rec.get('quarantined', len(summary.quarantined))}")
        for ev in summary.resumes:
            lines.append(f"  resumed: {ev.get('done')}/{ev.get('tasks')} "
                         f"shards restored from a previous run")
        for ev in summary.worker_lost:
            span = (f"tasks {ev.get('lo')}-{ev.get('hi')}"
                    if ev.get("lo") is not None else "?")
            lines.append(f"  worker lost ({ev.get('reason')}): {span}")
        for ev in summary.chunk_retries:
            lines.append(f"  {ev.get('action', 'retry')} "
                         f"({ev.get('reason')}): tasks "
                         f"{ev.get('lo')}-{ev.get('hi')}"
                         + (f", attempt {ev['attempt']}"
                            if ev.get("attempt") is not None else ""))
        for ev in summary.quarantined:
            lines.append(f"  QUARANTINED task {ev.get('index')} "
                         f"({ev.get('reason')}): {ev.get('error')}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# obs diff — regression attribution
# ---------------------------------------------------------------------------
def diff_perf_reports(a: Mapping[str, Any], b: Mapping[str, Any],
                      tolerance: float = 0.25) -> Dict[str, Any]:
    """Per-workload wall delta table + the compare_reports gate.

    Generalizes :func:`repro.perf.suite.compare_reports` — instead of
    only regression messages, every shared workload's delta is
    reported; the gate messages (and the implied non-zero exit) ride
    along under ``"regressions"``.
    """
    from repro.perf.suite import compare_reports

    def _wall(w: Mapping[str, Any]) -> float:
        return float(w.get("wall_median_s") or w["wall_s"])

    wa = {w["name"]: w for w in a.get("workloads", [])}
    wb = {w["name"]: w for w in b.get("workloads", [])}
    deltas = []
    for name in [n for n in wb if n in wa]:
        t_a, t_b = _wall(wa[name]), _wall(wb[name])
        deltas.append({
            "name": name, "a_s": t_a, "b_s": t_b,
            "delta_s": t_b - t_a,
            "ratio": t_b / t_a if t_a > 0 else float("inf"),
        })
    deltas.sort(key=lambda d: (-abs(d["delta_s"]), d["name"]))
    return {
        "kind": "perf",
        "deltas": deltas,
        "only_a": sorted(set(wa) - set(wb)),
        "only_b": sorted(set(wb) - set(wa)),
        "regressions": compare_reports(dict(a), dict(b),
                                       tolerance=tolerance),
    }


def diff_ledgers(a: Sequence[Mapping[str, Any]],
                 b: Sequence[Mapping[str, Any]],
                 top: int = DEFAULT_TOP) -> Dict[str, Any]:
    """Attribute cost movement between two run ledgers.

    Pairs the runs' ``cell`` records by (scenario, strategy), ranks the
    absolute cost deltas, and attributes each mover to the phase whose
    recorded virtual time moved the most — the "which strategy, which
    phase" answer.  Outcome flips (ok -> delivery-error etc.) are
    listed separately; counter deltas cover the sweep-wide metrics.
    """
    sa, sb = LedgerSummary(a), LedgerSummary(b)
    movers: List[Dict[str, Any]] = []
    flips: List[Dict[str, Any]] = []
    for key in sorted(set(sa.cells) & set(sb.cells),
                      key=lambda k: (str(k[0]), k[1])):
        scenario, strategy = key
        ca, cb = sa.cells[key], sb.cells[key]
        if ca.get("outcome") != cb.get("outcome"):
            flips.append({"scenario": scenario, "strategy": strategy,
                          "a": ca.get("outcome"), "b": cb.get("outcome")})
        t_a, t_b = sa.cell_time(key), sb.cell_time(key)
        if t_a is None or t_b is None or t_a == t_b:
            continue
        pa, pb = sa.phase_totals(key), sb.phase_totals(key)
        phase_deltas = sorted(
            ({"phase": name,
              "a_s": pa.get(name, 0.0), "b_s": pb.get(name, 0.0),
              "delta_s": pb.get(name, 0.0) - pa.get(name, 0.0)}
             for name in sorted(set(pa) | set(pb))),
            key=lambda d: (-abs(d["delta_s"]), d["phase"]))
        movers.append({
            "scenario": scenario, "strategy": strategy,
            "a_s": t_a, "b_s": t_b, "delta_s": t_b - t_a,
            "ratio": t_b / t_a if t_a > 0 else float("inf"),
            "phases": phase_deltas,
            "phase": phase_deltas[0]["phase"] if phase_deltas else None,
        })
    movers.sort(key=lambda m: (-abs(m["delta_s"]), str(m["scenario"]),
                               m["strategy"]))

    counters: List[Dict[str, Any]] = []
    for name in sorted(set(sa.metrics) & set(sb.metrics)):
        ka = sa.metrics[name].get("counters", {})
        kb = sb.metrics[name].get("counters", {})
        for key in sorted(set(ka) | set(kb)):
            va, vb = ka.get(key, 0), kb.get(key, 0)
            if va != vb:
                counters.append({"counter": key, "a": va, "b": vb,
                                 "delta": vb - va})
    counters.sort(key=lambda c: (-abs(c["delta"]), c["counter"]))

    return {
        "kind": "ledger",
        "a": {"run_id": sa.run_id, "cmd": sa.cmd, "args": sa.args},
        "b": {"run_id": sb.run_id, "cmd": sb.cmd, "args": sb.args},
        "same_run_id": sa.run_id == sb.run_id,
        "outcome_flips": flips,
        "movers": movers[:top],
        "total_movers": len(movers),
        "counters": counters[:top],
        "only_a": sorted(str(k) for k in set(sa.cells) - set(sb.cells)),
        "only_b": sorted(str(k) for k in set(sb.cells) - set(sa.cells)),
    }


def render_diff(diff: Mapping[str, Any], top: int = DEFAULT_TOP) -> str:
    """Text body of ``obs diff`` for a diff structure."""
    lines: List[str] = []
    if diff["kind"] == "perf":
        lines.append("perf report diff (A -> B, wall median seconds)")
        for d in diff["deltas"][:top]:
            lines.append(f"  {d['name']:<16s} {d['a_s']:.4f} -> "
                         f"{d['b_s']:.4f} s  "
                         f"({(d['ratio'] - 1.0) * 100:+.0f}%)")
        for name in diff["only_a"]:
            lines.append(f"  {name}: only in A")
        for name in diff["only_b"]:
            lines.append(f"  {name}: only in B")
        if diff["regressions"]:
            lines.append("regressions (beyond tolerance):")
            for message in diff["regressions"]:
                lines.append(f"  REGRESSION {message}")
        else:
            lines.append("no regressions beyond tolerance")
        return "\n".join(lines)

    a, b = diff["a"], diff["b"]
    lines.append(f"ledger diff: {a['run_id']} ({a['cmd']}) -> "
                 f"{b['run_id']} ({b['cmd']})")
    changed = {k: (a["args"].get(k), b["args"].get(k))
               for k in sorted(set(a["args"]) | set(b["args"]))
               if a["args"].get(k) != b["args"].get(k)}
    if changed:
        lines.append("  args changed: " + ", ".join(
            f"{k}: {va!r} -> {vb!r}" for k, (va, vb) in changed.items()))
    for flip in diff["outcome_flips"]:
        lines.append(f"  OUTCOME scenario {flip['scenario']} / "
                     f"{flip['strategy']}: {flip['a']} -> {flip['b']}")
    if not diff["movers"]:
        lines.append("  no cell cost moved")
        return "\n".join(lines)
    lines.append(f"  {diff['total_movers']} cells moved; largest first:")
    for m in diff["movers"]:
        lines.append(f"  scenario {m['scenario']} / {m['strategy']}: "
                     f"{m['a_s']:.3e} -> {m['b_s']:.3e} s "
                     f"({(m['ratio'] - 1.0) * 100:+.0f}%)")
        if m["phases"]:
            p = m["phases"][0]
            moved = sum(abs(d["delta_s"]) for d in m["phases"])
            share = abs(p["delta_s"]) / moved if moved else 0.0
            lines.append(f"    -> phase {p['phase']!r}: "
                         f"{p['a_s']:.3e} -> {p['b_s']:.3e} s "
                         f"({share:.0%} of the phase-time movement)")
    if diff["counters"]:
        lines.append("  counter deltas:")
        for c in diff["counters"]:
            lines.append(f"    {c['counter']}: {c['a']:,} -> {c['b']:,} "
                         f"({c['delta']:+,})")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# obs flame
# ---------------------------------------------------------------------------
def flame_lines(records: Sequence[Mapping[str, Any]]) -> List[str]:
    """Collapsed-stack lines for a ledger.

    Prefers real sampling-profiler stacks (``profile_stack`` records
    from a ``--profile`` run, unit: samples); falls back to the
    recorded per-phase virtual times (unit: whole microseconds), so
    every chaos/trace ledger can render *some* flame even without the
    profiler.
    """
    summary = LedgerSummary(records)
    if summary.profile_stacks:
        ranked = sorted(summary.profile_stacks,
                        key=lambda r: (-r["count"], r["stack"]))
        return [f"{r['stack']} {r['count']}" for r in ranked]
    folded: Dict[str, int] = {}
    for (scenario, strategy), cell in summary.cells.items():
        for name, phase in (cell.get("phases") or {}).items():
            stack = f"{summary.cmd};{strategy};{name}"
            folded[stack] = folded.get(stack, 0) + int(
                round(float(phase["total_s"]) * 1e6))
    for r in summary.span_summaries:
        stack = f"{summary.cmd};{r.get('kind', 'span')};{r['name']}"
        folded[stack] = folded.get(stack, 0) + int(
            round(float(r["total_s"]) * 1e6))
    return [f"{stack} {count}"
            for stack, count in sorted(folded.items(),
                                       key=lambda kv: (-kv[1], kv[0]))
            if count > 0]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="Analyze run ledgers and perf reports.")
    sub = parser.add_subparsers(dest="obs_cmd", required=True)

    p = sub.add_parser("report", help="summarize one ledger/perf report")
    p.add_argument("path", help="ledger .jsonl or BENCH_repro.json")
    p.add_argument("--top", type=int, default=DEFAULT_TOP,
                   help="rows per table (default: %(default)s)")

    p = sub.add_parser("diff", help="regression attribution A -> B")
    p.add_argument("a", help="baseline artifact")
    p.add_argument("b", help="current artifact")
    p.add_argument("--top", type=int, default=DEFAULT_TOP,
                   help="movers to show (default: %(default)s)")
    p.add_argument("--tolerance", type=float, default=0.25,
                   help="perf-report regression tolerance "
                        "(default: %(default)s)")
    p.add_argument("-o", "--output", default=None,
                   help="also write the structured diff as JSON here")

    p = sub.add_parser("flame", help="collapsed stacks for flamegraph.pl")
    p.add_argument("path", help="ledger .jsonl")
    p.add_argument("-o", "--output", default=None,
                   help="write collapsed stacks here (default stdout)")

    p = sub.add_parser("validate", help="schema-check a ledger")
    p.add_argument("path", help="ledger .jsonl")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.obs_cmd == "report":
        kind, data = load_artifact(args.path)
        print(render_report(kind, data, top=args.top))
        return 0

    if args.obs_cmd == "diff":
        (kind_a, a), (kind_b, b) = load_artifact(args.a), \
            load_artifact(args.b)
        if kind_a != kind_b:
            raise ValueError(
                f"cannot diff a {kind_a} artifact against a {kind_b} one "
                f"({args.a} vs {args.b})")
        if kind_a == "perf":
            diff = diff_perf_reports(a, b, tolerance=args.tolerance)
        else:
            diff = diff_ledgers(a, b, top=args.top)
        print(render_diff(diff, top=args.top))
        if args.output:
            with open(args.output, "w") as fh:
                json.dump(diff, fh, indent=2, sort_keys=True)
                fh.write("\n")
        return 1 if diff.get("regressions") else 0

    if args.obs_cmd == "flame":
        kind, records = load_artifact(args.path)
        if kind != "ledger":
            raise ValueError(f"{args.path}: obs flame needs a ledger")
        lines = flame_lines(records)
        if args.output:
            with open(args.output, "w") as fh:
                for line in lines:
                    fh.write(line + "\n")
            print(f"wrote {args.output} ({len(lines)} stacks)")
        else:
            for line in lines:
                print(line)
        return 0

    # validate
    import sys

    try:
        records = read_ledger(args.path)
        n_runs = validate_ledger(records)
    except ValueError as exc:
        print(f"INVALID ledger {args.path}: {exc}", file=sys.stderr)
        return 1
    print(f"{args.path} OK ({n_runs} run(s), {len(records)} records)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
