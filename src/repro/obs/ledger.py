"""Run ledger: append-only, schema-versioned JSONL record of one run.

Every CLI entry point (``perf``, ``chaos``, ``scenario``, ``report``,
``trace``) can write a **run ledger** — one JSON object per line, in
append order — so a run leaves a durable, diffable record of what it
computed, how the sweep fleet behaved and where the time went.  The
``python -m repro obs`` subcommand family consumes these files
(``obs report``, ``obs diff``, ``obs flame``, ``obs validate``).

Determinism contract
--------------------
Ledgers are **byte-deterministic** for the same semantic inputs: two
runs with the same seed/args produce byte-identical ledgers at any
``--jobs`` level, *modulo* the declared non-deterministic envelope:

* every record may carry a ``"wall"`` object — wall-clock timestamps,
  pids, host facts, measured wall seconds — which is excluded from the
  deterministic view;
* records flagged ``"volatile": true`` (worker heartbeats, sampling
  profiler stacks, cache behaviour, recovery actions like
  ``worker_lost``/``chunk_retry``/``sweep_resume``, and other
  execution-shape facts like the worker count) are excluded entirely.

The one recovery record that **is** deterministic is
``task_quarantined``: for a given process-fault plan the quarantine set
is a pure function of the plan (independent of worker count, chunk
geometry or resume), so it belongs to the result, not the execution.

:func:`deterministic_view` applies both rules; :func:`ledger_fingerprint`
hashes the result, which is what the byte-identity tests compare.
Everything else — field ordering (canonically sorted keys), float
formatting (``repr``-exact via :func:`canonical_dumps`), event order
(append order) — is stable by construction.

Identity
--------
``run_id`` is **stable**: a content hash of the command name and its
*semantic* arguments (seed, machine, scenario shape — never execution
shape like ``--jobs``/``--cache`` or output paths), so re-running the
same experiment yields the same id and ``obs diff`` can tell "same
experiment, different outcome" from "different experiment".

Schema
------
:data:`LEDGER_SCHEMA` versions the record format; the first record of a
run is ``run_start`` (carrying the schema, run_id, command, semantic
args, machine and best-effort ``git describe``), the last is
``run_end`` (status).  :func:`validate_ledger` enforces the structural
contract (also exposed declaratively as :func:`ledger_json_schema` for
documentation and external validators).  Files may hold several runs
concatenated; :func:`split_runs` separates them.
"""

from __future__ import annotations

import io
import json
import os
import subprocess
from typing import Any, Dict, Iterable, List, Mapping, Optional

import numpy as np

from repro.par.cache import stable_fingerprint

#: ledger record-format version (bump when field meanings change)
LEDGER_SCHEMA = 1

#: per-record non-deterministic envelope key (wall clock, pids, hosts)
ENVELOPE_KEY = "wall"

#: flag marking a whole record as non-deterministic
VOLATILE_KEY = "volatile"

#: record kinds the validator knows about (others are allowed; these
#: have required fields)
_REQUIRED_FIELDS = {
    "run_start": ("schema", "run_id", "cmd", "args"),
    "run_end": ("status",),
    "cell": ("scenario", "strategy"),
    "atlas_shard": ("msgs", "dup"),
    "workload": ("name",),
    "metrics": ("snapshot",),
    "sweep": ("tasks",),
    "cache": ("hits", "misses", "stores", "corrupt"),
    "cache_corrupt": ("key",),
    "cache_repair": ("key",),
    "heartbeat": ("chunk",),
    "worker_lost": ("reason",),
    "chunk_retry": ("reason",),
    "task_quarantined": ("index", "reason"),
    "sweep_resume": ("done", "tasks"),
    "span_summary": ("name", "count", "total_s"),
    "profile_stack": ("stack", "count"),
}


def _to_plain(obj: Any) -> Any:
    """JSON fallback: numpy scalars/arrays become plain Python values."""
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(
        f"ledger records must be plain JSON data, got "
        f"{type(obj).__name__}: {obj!r}")


def canonical_dumps(obj: Any) -> str:
    """Byte-deterministic JSON: sorted keys, compact, no NaN/Inf.

    Floats serialize via ``repr`` (shortest round-trip form — stable
    across processes and platforms for identical values); NaN and
    infinities are rejected rather than emitted as non-standard tokens,
    so every ledger line is strict JSON.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False, default=_to_plain)


def git_describe(cwd: Optional[str] = None) -> Optional[str]:
    """Best-effort ``git describe --always --dirty`` (None off a repo)."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=10.0, cwd=cwd)
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def make_run_id(cmd: str, args: Mapping[str, Any]) -> str:
    """Stable run id: content hash of the command + semantic args.

    ``args`` must contain only *semantic* inputs (seed, machine,
    scenario shape) — never ``--jobs``, cache settings or output paths —
    so the id is identical across execution shapes.
    """
    digest = stable_fingerprint({
        "cmd": cmd,
        "schema": LEDGER_SCHEMA,
        "args": {str(k): v for k, v in args.items()},
    })
    return f"run-{digest[:16]}"


class RunLedger:
    """Writer for one run's ledger (in-memory until :meth:`flush`).

    Records are append-only; :meth:`flush` atomically rewrites the file
    (temp file + ``os.replace``), so readers never observe a torn
    ledger and a crashed run leaves either the previous flush or
    nothing.  Used as a context manager, exit flushes and appends a
    ``run_end`` (status ``"error"`` when exiting on an exception).

    Parameters
    ----------
    path:
        Output file.  ``None`` keeps the ledger purely in memory (the
        CLI entry points use this when ``--ledger`` is not given and a
        library caller still wants the record list).
    cmd, args:
        Command name and its *semantic* arguments (see
        :func:`make_run_id`).
    machine:
        Optional machine-preset name recorded in ``run_start``.
    wall:
        Optional extra non-deterministic facts for the ``run_start``
        envelope (the CLI passes argv and the start timestamp).
    """

    def __init__(self, path: Optional[str], cmd: str,
                 args: Mapping[str, Any], machine: Optional[str] = None,
                 run_id: Optional[str] = None,
                 wall: Optional[Mapping[str, Any]] = None) -> None:
        self.path = path
        self.cmd = cmd
        self.run_id = run_id or make_run_id(cmd, args)
        self.records: List[Dict[str, Any]] = []
        self._finished = False
        start: Dict[str, Any] = {
            "event": "run_start",
            "schema": LEDGER_SCHEMA,
            "run_id": self.run_id,
            "cmd": cmd,
            "args": {str(k): v for k, v in sorted(args.items())},
            "git": git_describe(),
        }
        if machine is not None:
            start["machine"] = machine
        envelope = {"pid": os.getpid()}
        if wall:
            envelope.update(wall)
        start[ENVELOPE_KEY] = envelope
        self._append(start)

    # -- recording ----------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        if self._finished:
            raise ValueError("ledger already finished (run_end recorded)")
        # Serialize eagerly so malformed records fail at the call site,
        # not at flush time far from the bug.
        canonical_dumps(record)
        self.records.append(record)

    def event(self, kind: str, *, volatile: bool = False,
              wall: Optional[Mapping[str, Any]] = None,
              **fields: Any) -> Dict[str, Any]:
        """Append one record; returns it (already validated as JSON)."""
        record: Dict[str, Any] = {"event": kind, **fields}
        if volatile:
            record[VOLATILE_KEY] = True
        if wall:
            record[ENVELOPE_KEY] = dict(wall)
        self._append(record)
        return record

    def metrics(self, snapshot: Mapping[str, Any],
                name: str = "metrics") -> None:
        """Record a :meth:`MetricsRegistry.to_dict` snapshot."""
        self.event("metrics", name=name, snapshot=dict(snapshot))

    def cache_events(self, cache: Any) -> None:
        """Record a :class:`~repro.par.cache.ResultCache`'s activity.

        One ``cache`` summary record (hit/miss/store/corrupt/repair
        counts and the derived hit rate) plus one ``cache_corrupt`` /
        ``cache_repair`` record per corrupt on-disk entry — a corrupt
        read is never just a silent miss in the ledger.  All of these
        are **volatile**: cache behaviour is a fact about the execution
        (warm vs cold, interrupted vs not), never about the result, so
        it must not move the deterministic fingerprint.
        """
        stats = cache.stats()
        self.event("cache", volatile=True, **stats)
        for ev in getattr(cache, "events", ()):
            if ev.get("op") == "corrupt":
                self.event("cache_corrupt", volatile=True, key=ev["key"])
            elif ev.get("op") == "repair":
                self.event("cache_repair", volatile=True, key=ev["key"])

    def sweep(self, stats: Any, name: str = "sweep") -> None:
        """Record a :class:`~repro.par.SweepStats`: totals + fleet.

        The shard total is deterministic.  Executed/cache-hit counts,
        the worker count, chunking and per-chunk heartbeats depend on
        the execution shape (worker count, cache warmth, whether the
        run was resumed) and live in volatile records or the wall
        envelope.  Recovery telemetry follows the same split: a
        ``task_quarantined`` record is a *result* — the shard is
        missing, deterministically, for a given fault plan — while
        ``worker_lost`` / ``chunk_retry`` / ``sweep_resume`` describe
        how this particular execution got there and are volatile.
        """
        self.event(name, tasks=stats.tasks,
                   wall={"executed": stats.executed,
                         "cache_hits": stats.cache_hits})
        self.event("fleet", volatile=True, jobs=stats.jobs,
                   chunks=stats.chunks,
                   stragglers=[ev["chunk"] for ev in stats.stragglers()])
        for ev in stats.worker_events:
            fields = {k: v for k, v in ev.items()
                      if k not in ("wall_s", "pid")}
            self.event("heartbeat", volatile=True,
                       wall={"wall_s": ev.get("wall_s"),
                             "pid": ev.get("pid")},
                       **fields)
        recovery = getattr(stats, "recovery_events", None) or ()
        for ev in recovery:
            fields = {k: v for k, v in ev.items() if k != "kind"}
            if ev.get("kind") == "task_quarantined":
                self.event("task_quarantined", **fields)
            else:
                self.event(ev["kind"], volatile=True, **fields)
        counters = {
            "retried": getattr(stats, "retried", 0),
            "respawns": getattr(stats, "respawns", 0),
            "resumed": getattr(stats, "resumed", 0),
            "quarantined": len(getattr(stats, "quarantined", ()) or ()),
        }
        if any(counters.values()):
            self.event("recovery", volatile=True, **counters)

    def span_summaries(self, tracer: Any, top: int = 0) -> None:
        """Record per-(track-kind, name) span aggregates of a tracer.

        Uses :func:`repro.obs.analysis.hotspots`; ``top=0`` records all
        rows.  Virtual-time totals are deterministic, so these records
        live in the deterministic section.
        """
        from repro.obs.analysis import hotspots

        rows = hotspots(tracer, top=top or None)
        for row in rows:
            self.event("span_summary", name=row["name"], kind=row["kind"],
                       count=row["count"], total_s=row["total_s"])

    # -- lifecycle ----------------------------------------------------------
    def finish(self, status: str = "ok", **fields: Any) -> None:
        """Append the ``run_end`` record and flush."""
        record: Dict[str, Any] = {"event": "run_end", "status": status,
                                  **fields}
        self._append(record)
        self._finished = True
        self.flush()

    def flush(self) -> None:
        """Atomically (re)write all records to :attr:`path`."""
        if self.path is None:
            return
        buf = io.StringIO()
        for record in self.records:
            buf.write(canonical_dumps(record))
            buf.write("\n")
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            fh.write(buf.getvalue())
        os.replace(tmp, self.path)

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._finished:
            if exc_type is None:
                self.finish("ok")
            else:
                self.finish("error", error=f"{exc_type.__name__}: {exc}")
        return False


# ---------------------------------------------------------------------------
# Reading, validation, determinism
# ---------------------------------------------------------------------------
def read_ledger(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL ledger file into its record list."""
    records: List[Dict[str, Any]] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON ({exc})") from None
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{lineno}: ledger lines must be JSON objects, "
                    f"got {type(record).__name__}")
            records.append(record)
    return records


def split_runs(records: Iterable[Mapping[str, Any]]
               ) -> List[List[Dict[str, Any]]]:
    """Split a (possibly concatenated) record stream into runs."""
    runs: List[List[Dict[str, Any]]] = []
    for record in records:
        if record.get("event") == "run_start" or not runs:
            runs.append([])
        runs[-1].append(dict(record))
    return runs


def validate_ledger(records: Iterable[Mapping[str, Any]]) -> int:
    """Validate records against the ledger schema; returns run count.

    Raises ``ValueError`` with a specific message on the first
    violation.  The structural rules mirror
    :func:`ledger_json_schema`; known event kinds additionally require
    their fields.
    """
    runs = split_runs(records)
    if not runs:
        raise ValueError("ledger holds no records")
    for run_no, run in enumerate(runs):
        where = f"run {run_no}"
        head = run[0]
        if head.get("event") != "run_start":
            raise ValueError(f"{where}: first record must be run_start, "
                             f"got {head.get('event')!r}")
        if head.get("schema") != LEDGER_SCHEMA:
            raise ValueError(
                f"{where}: unsupported ledger schema "
                f"{head.get('schema')!r} (expected {LEDGER_SCHEMA})")
        for i, record in enumerate(run):
            kind = record.get("event")
            if not isinstance(kind, str) or not kind:
                raise ValueError(
                    f"{where}, record {i}: missing 'event' kind")
            if kind == "run_start" and i != 0:
                raise ValueError(
                    f"{where}, record {i}: run_start not at run head")
            if kind == "run_end" and i != len(run) - 1:
                raise ValueError(
                    f"{where}, record {i}: run_end before end of run")
            vol = record.get(VOLATILE_KEY, False)
            if not isinstance(vol, bool):
                raise ValueError(
                    f"{where}, record {i}: {VOLATILE_KEY!r} must be a "
                    f"boolean, got {vol!r}")
            env = record.get(ENVELOPE_KEY)
            if env is not None and not isinstance(env, dict):
                raise ValueError(
                    f"{where}, record {i}: {ENVELOPE_KEY!r} must be an "
                    f"object, got {type(env).__name__}")
            for field_name in _REQUIRED_FIELDS.get(kind, ()):
                if field_name not in record:
                    raise ValueError(
                        f"{where}, record {i} ({kind}): missing required "
                        f"field {field_name!r}")
        if run[-1].get("event") != "run_end":
            raise ValueError(
                f"{where}: last record must be run_end, got "
                f"{run[-1].get('event')!r} (truncated ledger?)")
    return len(runs)


def deterministic_view(records: Iterable[Mapping[str, Any]]
                       ) -> List[Dict[str, Any]]:
    """The deterministic subset: drop volatile records and envelopes."""
    view: List[Dict[str, Any]] = []
    for record in records:
        if record.get(VOLATILE_KEY):
            continue
        view.append({k: v for k, v in record.items()
                     if k not in (ENVELOPE_KEY, VOLATILE_KEY)})
    return view


def ledger_fingerprint(records_or_path: Any) -> str:
    """SHA-256 over the canonical deterministic view of a ledger.

    Two runs of the same experiment — at any ``--jobs`` level, with a
    result cache in *any* state, interrupted-and-resumed or not — have
    equal fingerprints.  Accepts a path or an already-parsed record
    list.
    """
    import hashlib

    if isinstance(records_or_path, (str, os.PathLike)):
        records = read_ledger(os.fspath(records_or_path))
    else:
        records = list(records_or_path)
    h = hashlib.sha256()
    for record in deterministic_view(records):
        h.update(canonical_dumps(record).encode())
        h.update(b"\n")
    return h.hexdigest()


def ledger_json_schema() -> Dict[str, Any]:
    """Declarative JSON Schema (draft-07 subset) for one ledger line.

    The repo carries no ``jsonschema`` dependency — this object is the
    documentation-of-record (rendered in ``docs/observability.md``) and
    a contract external validators can consume; :func:`validate_ledger`
    is the built-in enforcement of the same rules.
    """
    return {
        "$schema": "http://json-schema.org/draft-07/schema#",
        "title": f"repro run-ledger record (schema {LEDGER_SCHEMA})",
        "type": "object",
        "required": ["event"],
        "properties": {
            "event": {"type": "string", "minLength": 1},
            VOLATILE_KEY: {"type": "boolean"},
            ENVELOPE_KEY: {
                "type": "object",
                "description": "declared non-deterministic envelope "
                               "(wall clocks, pids, hosts); stripped by "
                               "deterministic_view()",
            },
        },
        "allOf": [
            {
                "if": {"properties": {"event": {"const": kind}}},
                "then": {"required": list(("event",) + fields)},
            }
            for kind, fields in sorted(_REQUIRED_FIELDS.items())
        ],
    }
