"""Opt-in sampling profiler exporting collapsed-stack (flamegraph) data.

The DES tracer attributes *virtual* time; this profiler attributes
**host CPU/wall time** — where the Python interpreter actually spends
its cycles while a command runs.  It samples the main thread's stack at
a fixed interval from a background thread (via
``sys._current_frames()``), folds samples into collapsed-stack lines
(``frame;frame;frame count``, the format ``flamegraph.pl`` and
https://www.speedscope.app consume) and costs nothing when not
activated — it is wired behind the ``--profile`` flag of the CLI entry
points and never imported on the hot path.

>>> with SamplingProfiler(interval=0.001) as prof:
...     sum(i * i for i in range(100_000))
333328333350000
>>> isinstance(prof.collapsed(), list)
True
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

#: default sampling interval [s] — ~200 Hz keeps overhead low while
#: resolving millisecond-scale phases
DEFAULT_INTERVAL = 0.005


def _fold(frame) -> str:
    """Collapse one frame stack into a ``;``-joined root-to-leaf line."""
    parts: List[str] = []
    while frame is not None:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    return ";".join(reversed(parts))


class SamplingProfiler:
    """Wall-clock stack sampler for one thread (default: the caller's).

    Parameters
    ----------
    interval:
        Seconds between samples (default :data:`DEFAULT_INTERVAL`).
    thread_id:
        Thread to sample; defaults to the thread that calls
        :meth:`start` (the CLI main thread).

    Use as a context manager; afterwards :meth:`collapsed` returns the
    folded stacks and :meth:`write_collapsed` serializes them.  Sample
    counts approximate time: ``count * interval`` seconds per stack.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL,
                 thread_id: Optional[int] = None) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.interval = float(interval)
        self.thread_id = thread_id
        self.samples: Dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        if self.thread_id is None:
            self.thread_id = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(target=self._sample_loop,
                                        name="repro-obs-profiler",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    def _sample_loop(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self.thread_id)
            if frame is None:
                continue
            stack = _fold(frame)
            self.samples[stack] = self.samples.get(stack, 0) + 1

    # -- output -------------------------------------------------------------
    @property
    def total_samples(self) -> int:
        return sum(self.samples.values())

    def collapsed(self) -> List[str]:
        """Collapsed-stack lines, heaviest first (ties: stack order)."""
        return [f"{stack} {count}"
                for stack, count in sorted(self.samples.items(),
                                           key=lambda kv: (-kv[1], kv[0]))]

    def stacks(self) -> List[Tuple[str, int]]:
        """(stack, sample count) pairs, heaviest first."""
        return sorted(self.samples.items(), key=lambda kv: (-kv[1], kv[0]))

    def write_collapsed(self, path: str) -> int:
        """Write collapsed stacks to ``path``; returns the line count.

        Feed the file to ``flamegraph.pl`` or drop it on
        https://www.speedscope.app to render a flamegraph.
        """
        lines = self.collapsed()
        with open(path, "w") as fh:
            for line in lines:
                fh.write(line + "\n")
        return len(lines)


def profile_wall_estimate(samples: Dict[str, int],
                          interval: float) -> float:
    """Approximate profiled wall seconds represented by ``samples``."""
    return sum(samples.values()) * interval


if __name__ == "__main__":  # pragma: no cover - manual smoke
    with SamplingProfiler(interval=0.001) as prof:
        t0 = time.time()
        while time.time() - t0 < 0.2:
            sum(i * i for i in range(10_000))
    print("\n".join(prof.collapsed()[:10]))
