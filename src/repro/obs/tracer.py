"""Span/event tracer: the recording half of the observability layer.

The tracer API is deliberately *completion-based*: in a discrete-event
simulation every interval's start **and** end virtual times are known at
the moment the interval is booked (a message's delivery time is computed
when the send resolves, a NIC transfer's finish when it enters the byte
server), so instrumentation records whole :class:`SpanRecord` objects
instead of paired begin/end calls.  Three record kinds exist:

``span``
    A named interval ``[t0, t1]`` on a *track* (one track per rank, per
    NIC, per strategy phase lane, ...), with free-form ``args``.
``instant``
    A point event (process start/finish, markers).
``counter``
    A sampled time series (engine queue depth, resource occupancy).

Two implementations:

:class:`NullTracer`
    The default.  ``enabled`` is ``False`` and every method is a no-op;
    hot paths guard emission with a single cached boolean (e.g.
    ``Simulator._trace_on``), so the disabled path costs one branch —
    the pay-for-what-you-use contract the perf suite's ``obs_overhead``
    workload pins.
:class:`MemoryTracer`
    Appends records to in-memory lists, consumed by the exporters in
    :mod:`repro.obs.export`.

Tracing never perturbs simulated virtual times: recording is purely
observational, and ``tests/obs`` asserts traced runs stay bit-identical
to untraced ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class SpanRecord:
    """One completed interval on a track."""

    track: str
    name: str
    t0: float
    t1: float
    cat: str = ""
    args: Optional[Dict[str, Any]] = None

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class InstantRecord:
    """One point event on a track."""

    track: str
    name: str
    t: float
    cat: str = ""
    args: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class CounterRecord:
    """One sample of a named time series on a track."""

    track: str
    name: str
    t: float
    value: float


class NullTracer:
    """Disabled tracer: every record call is a no-op.

    ``enabled`` is a class attribute so instrumented code can cache it
    once (``self._trace_on = tracer.enabled``) and pay a single local
    boolean test per potential record site.
    """

    enabled = False
    #: opt-in high-volume detail (per-resume instants); see MemoryTracer
    fine = False

    def span(self, track: str, name: str, t0: float, t1: float,
             cat: str = "", args: Optional[Dict[str, Any]] = None) -> None:
        pass

    def instant(self, track: str, name: str, t: float,
                cat: str = "", args: Optional[Dict[str, Any]] = None) -> None:
        pass

    def counter(self, track: str, name: str, t: float, value: float) -> None:
        pass

    def clear(self) -> None:
        pass


#: shared default instance — engine/transport code compares against
#: ``tracer.enabled`` rather than identity, so any NullTracer works
NULL_TRACER = NullTracer()


class MemoryTracer(NullTracer):
    """In-memory recording tracer.

    Parameters
    ----------
    fine:
        Also record high-volume per-event detail where instrumented code
        offers it (e.g. one instant per process resumption).  Off by
        default: fine records multiply trace size by the event count.
    """

    enabled = True

    def __init__(self, fine: bool = False) -> None:
        self.fine = bool(fine)
        self.spans: List[SpanRecord] = []
        self.instants: List[InstantRecord] = []
        self.counters: List[CounterRecord] = []

    def span(self, track: str, name: str, t0: float, t1: float,
             cat: str = "", args: Optional[Dict[str, Any]] = None) -> None:
        self.spans.append(SpanRecord(track, name, t0, t1, cat, args))

    def instant(self, track: str, name: str, t: float,
                cat: str = "", args: Optional[Dict[str, Any]] = None) -> None:
        self.instants.append(InstantRecord(track, name, t, cat, args))

    def counter(self, track: str, name: str, t: float, value: float) -> None:
        self.counters.append(CounterRecord(track, name, t, float(value)))

    def clear(self) -> None:
        """Drop all records (a fresh run reuses the tracer object)."""
        self.spans.clear()
        self.instants.clear()
        self.counters.clear()

    # -- introspection helpers ------------------------------------------------
    @property
    def num_records(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counters)

    def tracks(self) -> List[str]:
        """Distinct track names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for rec in self.spans:
            seen.setdefault(rec.track)
        for rec in self.instants:
            seen.setdefault(rec.track)
        for rec in self.counters:
            seen.setdefault(rec.track)
        return list(seen)

    def spans_on(self, track: str) -> List[SpanRecord]:
        return [s for s in self.spans if s.track == track]

    # -- cross-process merging ------------------------------------------------
    def to_payload(self) -> Dict[str, list]:
        """Picklable snapshot of all records (for worker -> parent IPC).

        Record dataclasses are already picklable; the payload is a plain
        dict so it can also round-trip through JSON-ish transports.
        """
        return {
            "spans": list(self.spans),
            "instants": list(self.instants),
            "counters": list(self.counters),
        }

    def to_snapshot(self) -> Dict[str, list]:
        """JSON-ready snapshot: every record as a plain dict.

        Unlike :meth:`to_payload` (which keeps the dataclasses for
        cheap pickling), this is pure JSON data in record-append order
        with a fixed field set per record.
        """
        from dataclasses import asdict

        return {
            "spans": [asdict(r) for r in self.spans],
            "instants": [asdict(r) for r in self.instants],
            "counters": [asdict(r) for r in self.counters],
        }

    def canonical_json(self) -> str:
        """Byte-deterministic serialization of :meth:`to_snapshot`.

        Sorted keys and shortest-round-trip float formatting via
        :func:`repro.obs.ledger.canonical_dumps`: two tracers holding
        the same records serialize to identical bytes — what the
        trace-transparency and parallel-equivalence tests compare.
        """
        from repro.obs.ledger import canonical_dumps

        return canonical_dumps(self.to_snapshot())

    def extend(self, payload: "MemoryTracer | Dict[str, list]") -> None:
        """Append another tracer's records (or a :meth:`to_payload`).

        The parallel sweep executor uses this to fold per-worker traces
        back into the parent tracer; appending payloads in task order
        reproduces the record order of an in-process serial run.
        """
        if isinstance(payload, MemoryTracer):
            payload = payload.to_payload()
        self.spans.extend(payload.get("spans", ()))
        self.instants.extend(payload.get("instants", ()))
        self.counters.extend(payload.get("counters", ()))


# ---------------------------------------------------------------------------
# Phase-span helpers (used by RankContext.phase)
# ---------------------------------------------------------------------------
class _NullPhase:
    """Reusable no-op context manager for untraced phase blocks."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


NULL_PHASE = _NullPhase()


class PhaseSpan:
    """Context manager recording ``[enter, exit]`` as one span.

    ``sim`` is duck-typed: anything with ``.now`` and ``.tracer``.  Safe
    to use around ``yield`` statements inside generator processes — the
    span simply covers the virtual time between entry and exit.
    """

    __slots__ = ("sim", "track", "name", "t0")

    def __init__(self, sim: Any, track: str, name: str) -> None:
        self.sim = sim
        self.track = track
        self.name = name
        self.t0 = 0.0

    def __enter__(self) -> "PhaseSpan":
        self.t0 = self.sim.now
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.sim.tracer.span(self.track, self.name, self.t0, self.sim.now,
                             cat="phase")
        return False
