"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the aggregation half of the observability layer: where
the tracer records *when* things happened, metrics record *how much* —
message counts, byte volumes, distribution summaries.  The registry is
snapshot-oriented: :meth:`MetricsRegistry.to_dict` emits a stable JSON
schema (versioned by :data:`SCHEMA`) that ``SimJob.metrics()`` exposes
and the trace CLI embeds in its reports.

Histograms use *fixed* bucket upper bounds chosen at construction, so
observation is O(log buckets) and merging/serializing needs no sample
retention; p50/p95/p99 are estimated by linear interpolation inside the
selected bucket (exact min/max are tracked to tighten the edge buckets).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

#: metrics JSON schema version (bump when field meanings change)
SCHEMA = 1

#: default byte-size buckets: 64 B .. 64 MiB in powers of four
DEFAULT_BYTE_BUCKETS = tuple(64 * 4 ** i for i in range(10))

#: default duration buckets: 1 ns .. ~1 s in decades
DEFAULT_TIME_BUCKETS = tuple(1e-9 * 10 ** i for i in range(10))


class Counter:
    """Monotonically increasing integer counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self.value += n


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with interpolated percentile summaries.

    ``buckets`` are strictly increasing upper bounds; one implicit
    overflow bucket catches everything above the last bound.
    """

    __slots__ = ("bounds", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BYTE_BUCKETS) -> None:
        bounds = [float(b) for b in buckets]
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must increase: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # + overflow
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        v = float(value)
        self.counts[bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.total += v
        if v < self.vmin:
            self.vmin = v
        if v > self.vmax:
            self.vmax = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (0 <= p <= 100).

        Linear interpolation inside the selected bucket, clamped to the
        observed min/max so single-bucket distributions stay tight.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        target = p / 100.0 * self.count
        cum = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cum + n >= target:
                lo = self.bounds[i - 1] if i > 0 else self.vmin
                hi = self.bounds[i] if i < len(self.bounds) else self.vmax
                lo = max(lo, self.vmin)
                hi = min(hi, self.vmax)
                if hi <= lo:
                    return lo
                frac = (target - cum) / n
                return lo + frac * (hi - lo)
            cum += n
        return self.vmax  # pragma: no cover - defensive

    def to_dict(self) -> Dict[str, object]:
        return {
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def merge_dict(self, snapshot: Dict[str, object]) -> None:
        """Absorb a :meth:`to_dict` snapshot (same bucket bounds).

        Bucket counts, totals and extrema combine exactly; merging the
        same snapshots in the same order is therefore deterministic —
        the property the parallel sweep executor relies on when folding
        per-worker registries back into the parent in task order.
        """
        bounds = [float(b) for b in snapshot["buckets"]]  # type: ignore
        if bounds != self.bounds:
            raise ValueError(
                f"histogram bucket mismatch: have {self.bounds}, "
                f"snapshot has {bounds}")
        counts = snapshot["counts"]
        for i, n in enumerate(counts):  # type: ignore[arg-type]
            self.counts[i] += int(n)
        n_new = int(snapshot["count"])  # type: ignore[arg-type]
        if n_new:
            self.count += n_new
            self.total += float(snapshot["sum"])  # type: ignore[arg-type]
            self.vmin = min(self.vmin, float(snapshot["min"]))  # type: ignore
            self.vmax = max(self.vmax, float(snapshot["max"]))  # type: ignore


class MetricsRegistry:
    """Named metric instruments with get-or-create access.

    >>> reg = MetricsRegistry()
    >>> reg.counter("transport.messages").inc(3)
    >>> reg.counter("transport.messages").value
    3
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_fresh(name)
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_fresh(name)
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_fresh(name)
            h = self._histograms[name] = Histogram(
                buckets if buckets is not None else DEFAULT_BYTE_BUCKETS)
        return h

    def _check_fresh(self, name: str) -> None:
        if (name in self._counters or name in self._gauges
                or name in self._histograms):
            raise ValueError(
                f"metric {name!r} already registered with a different type")

    def names(self) -> List[str]:
        return sorted(list(self._counters) + list(self._gauges)
                      + list(self._histograms))

    def to_dict(self) -> Dict[str, object]:
        """Stable JSON-serializable snapshot (see :data:`SCHEMA`)."""
        return {
            "schema": SCHEMA,
            "counters": {k: c.value
                         for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {k: h.to_dict()
                           for k, h in sorted(self._histograms.items())},
        }

    def canonical_json(self) -> str:
        """Byte-deterministic serialization of :meth:`to_dict`.

        Sorted keys, compact separators and shortest-round-trip float
        formatting (via :func:`repro.obs.ledger.canonical_dumps`), so
        two registries holding the same data serialize to identical
        bytes regardless of instrument registration order — the form
        the run ledger embeds and byte-identity tests compare.
        """
        from repro.obs.ledger import canonical_dumps

        return canonical_dumps(self.to_dict())

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold a :meth:`to_dict` snapshot into this registry.

        Counters add, gauges take the snapshot's value (last write
        wins), histograms combine bucket-wise via
        :meth:`Histogram.merge_dict`.  This is how per-worker registries
        from a parallel sweep are re-absorbed: merging snapshots in task
        order produces the same registry as observing everything
        in-process in that order.
        """
        if snapshot.get("schema") != SCHEMA:
            raise ValueError(
                f"cannot merge metrics snapshot with schema "
                f"{snapshot.get('schema')!r} (expected {SCHEMA})")
        for name, value in snapshot.get("counters", {}).items():  # type: ignore[union-attr]
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():  # type: ignore[union-attr]
            self.gauge(name).set(float(value))
        for name, hist in snapshot.get("histograms", {}).items():  # type: ignore[union-attr]
            self.histogram(name, hist["buckets"]).merge_dict(hist)


def merge_snapshots(snapshots: Sequence[Dict[str, object]]
                    ) -> Dict[str, object]:
    """Merge metrics snapshots (in order) into one combined snapshot."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged.to_dict()
