"""Unified observability layer: tracing, metrics, and trace export.

``repro.obs`` is the cross-cutting subsystem that makes the simulator's
hot paths diagnosable instead of guessable:

* :mod:`repro.obs.tracer` — a span/event/counter tracer threaded
  through the DES engine (process lifetimes, queue depths), the shared
  resources (NIC byte-server occupancy), the transport (per-message
  spans with protocol/locality/phase attributes) and the strategies
  (named phase spans).  The default :class:`NullTracer` costs one
  cached-boolean branch per record site — the ``obs_overhead`` perf
  workload pins that the disabled path stays within noise.
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms with p50/p95/p99 summaries, snapshotted by
  ``SimJob.metrics()`` into a stable JSON schema.
* :mod:`repro.obs.export` — Chrome trace-event / Perfetto JSON (one
  track per rank and per NIC), a NIC-utilization time-series sampler,
  and a text report; driven by ``python -m repro trace``.
* :mod:`repro.obs.ledger` — the append-only, schema-versioned JSONL
  **run ledger** every CLI entry point can emit (``--ledger``):
  byte-deterministic modulo a declared non-deterministic envelope, with
  a stable content-hashed ``run_id``.  Consumed by
  ``python -m repro obs`` (:mod:`repro.obs.analysis`: ``report`` /
  ``diff`` / ``flame`` / ``validate``).
* :mod:`repro.obs.profile` — an opt-in sampling profiler (``--profile``)
  exporting collapsed-stack flamegraph data for host CPU time, the
  counterpart to the tracer's virtual-time attribution.

Enable recording per job::

    from repro.obs import MemoryTracer
    tracer = MemoryTracer()
    job = SimJob(lassen(), num_nodes=2, ppn=8, trace=True, tracer=tracer)
    run_exchange(job, SplitMD(), pattern)
    write_chrome_trace("trace.json", to_chrome_trace(tracer))
"""

from repro.obs.tracer import (
    NULL_TRACER,
    CounterRecord,
    InstantRecord,
    MemoryTracer,
    NullTracer,
    PhaseSpan,
    SpanRecord,
)
from repro.obs.metrics import (
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.export import (
    nic_utilization,
    render_text_report,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    RunLedger,
    canonical_dumps,
    deterministic_view,
    ledger_fingerprint,
    ledger_json_schema,
    make_run_id,
    read_ledger,
    validate_ledger,
)
from repro.obs.profile import SamplingProfiler
from repro.obs.analysis import hotspots

__all__ = [
    "LEDGER_SCHEMA",
    "RunLedger",
    "SamplingProfiler",
    "canonical_dumps",
    "deterministic_view",
    "hotspots",
    "ledger_fingerprint",
    "ledger_json_schema",
    "make_run_id",
    "read_ledger",
    "validate_ledger",
    "NULL_TRACER",
    "NullTracer",
    "MemoryTracer",
    "SpanRecord",
    "InstantRecord",
    "CounterRecord",
    "PhaseSpan",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BYTE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "nic_utilization",
    "render_text_report",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
