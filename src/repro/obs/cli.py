"""``python -m repro trace`` — record a scenario, export Perfetto JSON.

Runs a strategy-comparison scenario with the unified tracer enabled and
writes a Chrome trace-event / Perfetto JSON file: one *process* per
strategy, one track per rank and per NIC, spans carrying protocol /
locality / phase attributes, plus NIC-utilization counter tracks.  Open
the output at https://ui.perfetto.dev or in ``chrome://tracing``.

Scenarios
---------
``alltoall``
    The trace-analysis example's heavy exchange: every GPU sends a
    duplicated block to every other GPU — the regime where node-aware
    strategies pay off (paper Figure 4.3).
``spmv``
    One audikw-analog SpMV exchange (paper Figure 4.2's irregular
    many-message pattern).
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Trace a strategy-comparison scenario and export "
                    "Perfetto/Chrome trace JSON.")
    parser.add_argument("scenario", nargs="?", default="alltoall",
                        choices=["alltoall", "spmv"],
                        help="workload to trace (default: %(default)s)")
    parser.add_argument("--strategy", action="append", dest="strategies",
                        metavar="LABEL",
                        help="strategy label (repeatable; default: "
                             "'Standard (staged)' and 'Split + MD (staged)')")
    parser.add_argument("--nodes", type=int, default=4,
                        help="job node count (default: %(default)s)")
    parser.add_argument("--ppn", type=int, default=40,
                        help="processes per node (default: %(default)s)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny scenario (CI wiring check, ~1 s)")
    parser.add_argument("-o", "--output", default="trace.json",
                        help="trace path (default: %(default)s)")
    parser.add_argument("--report", action="store_true",
                        help="print the text report to stdout as well")
    parser.add_argument("--ledger", default=None, metavar="PATH",
                        help="write a JSONL run ledger here (consumed by "
                             "`python -m repro obs`)")
    parser.add_argument("--profile", default=None, metavar="PATH",
                        help="sample the host stack during the traced "
                             "runs and write collapsed stacks "
                             "(flamegraph.pl format) here")
    return parser


def _alltoall_pattern(num_gpus: int, block: int):
    import numpy as np

    from repro.core import CommPattern

    sends = {
        s: {d: np.arange(block) for d in range(num_gpus) if d != s}
        for s in range(num_gpus)
    }
    return CommPattern(num_gpus, sends)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    from repro.core import run_exchange, strategy_by_name
    from repro.machine import lassen
    from repro.mpi import SimJob
    from repro.obs.export import (
        render_text_report,
        to_chrome_trace,
        validate_chrome_trace,
        write_chrome_trace,
    )
    from repro.obs.tracer import MemoryTracer

    labels = args.strategies or ["Standard (staged)", "Split + MD (staged)"]
    machine = lassen()
    nodes, ppn = args.nodes, args.ppn
    if args.smoke:
        nodes, ppn = 2, 8
    num_gpus = nodes * machine.gpus_per_node

    if args.scenario == "spmv":
        import numpy as np

        from repro.sparse.distributed import DistributedCSR
        from repro.sparse.suite import SUITE

        matrix = SUITE["audikw_1"].build(400 if args.smoke else 4000)
        dist = DistributedCSR(matrix, num_gpus=num_gpus)
        v = np.random.default_rng(5).standard_normal(dist.n)

        def run_one(job, strategy):
            from repro.sparse.spmv import distributed_spmv

            return distributed_spmv(job, dist, strategy, v).comm_time
    else:
        pattern = _alltoall_pattern(num_gpus, 64 if args.smoke else 512)

        def run_one(job, strategy):
            return run_exchange(job, strategy, pattern).comm_time

    profiler = None
    if args.profile:
        from repro.obs.profile import SamplingProfiler

        profiler = SamplingProfiler().start()
    tracers = {}
    metrics = {}
    comm_times = {}
    try:
        for label in labels:
            strategy = strategy_by_name(label)
            tracer = MemoryTracer()
            job = SimJob(machine, num_nodes=nodes, ppn=ppn, trace=True,
                         tracer=tracer)
            comm_time = run_one(job, strategy)
            tracers[label] = tracer
            metrics[label] = job.metrics()
            comm_times[label] = float(comm_time)
            msgs = metrics[label]["counters"]["transport.messages"]
            print(f"{label:30s} comm time {comm_time:.3e} s, "
                  f"{msgs} messages, {tracer.num_records} trace records")
    finally:
        if profiler is not None:
            profiler.stop()
    if profiler is not None:
        n = profiler.write_collapsed(args.profile)
        print(f"profile: wrote {args.profile} ({n} stacks, "
              f"{profiler.total_samples} samples)")

    trace = to_chrome_trace(tracers)
    n_events = validate_chrome_trace(trace)
    write_chrome_trace(args.output, trace)
    print(f"wrote {args.output} ({n_events} events; open in "
          f"https://ui.perfetto.dev)")
    if args.report:
        print(render_text_report(tracers, metrics=metrics))
    if args.ledger:
        from repro.obs.ledger import RunLedger

        ledger = RunLedger(args.ledger, "trace",
                           {"scenario": args.scenario, "strategies": labels,
                            "nodes": nodes, "ppn": ppn,
                            "smoke": args.smoke},
                           machine=machine.name)
        for label in labels:
            ledger.event("cell", scenario=args.scenario, strategy=label,
                         outcome="ok", time_s=comm_times[label])
            ledger.metrics(metrics[label], name=label)
        # One hotspot table across all traced strategies (virtual time).
        all_spans = [s for tr in tracers.values() for s in tr.spans]
        ledger.span_summaries(all_spans)
        if profiler is not None:
            for stack, count in profiler.stacks():
                ledger.event("profile_stack", volatile=True,
                             stack=stack, count=count)
        ledger.finish("ok", trace_events=n_events)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
