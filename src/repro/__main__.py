"""Command-line entry point.

Usage::

    python -m repro info                  # package + machine summary
    python -m repro report [out.md] [--jobs N] [--cache] [--machine M]
                                          # regenerate EXPERIMENTS body
    python -m repro predict N_NODES MSGS SIZE [--machine M]
                                          # model the Fig-4.3 scenario
    python -m repro scenario [--machine M] [--jobs N] [-o out.json]
                                          # sweep the paper scenarios
                                          # and print modelled times
    python -m repro perf [--smoke] [--repeats N] [--jobs N]
                         [--only NAME[,NAME...]] [--compare BASELINE.json]
                         [--tolerance F] [-o OUT.json]
                                          # wall-clock micro-suite ->
                                          # BENCH_repro.json; --compare
                                          # exits 1 on regression beyond
                                          # --tolerance vs the baseline
    python -m repro trace [SCENARIO] [--smoke] [-o trace.json]
                                          # traced run -> Perfetto JSON
    python -m repro chaos [--seed N] [--smoke] [--jobs N] [--cache]
                          [--proc-faults [SPEC]] [--ledger L.jsonl]
                          [--profile P.txt] [-o report.json]
                                          # randomized fault sweep with
                                          # engine invariant checks;
                                          # --proc-faults injects seeded
                                          # worker crashes/hangs/raises
    python -m repro atlas build [--machine M] [--smoke] [--jobs N]
                                [--cache] [--ledger L.jsonl] [-o A.atlas]
                                          # precompute the best-strategy
                                          # frontier (byte-identical at
                                          # any --jobs; --resume-able)
    python -m repro atlas query A.atlas N_NODES MSGS SIZE [--dup F]
                                          # O(1) winner + margin lookup
    python -m repro atlas info A.atlas    # describe an artifact
    python -m repro obs report LEDGER     # summarize a run ledger /
                                          # BENCH_repro.json
    python -m repro obs diff A B          # regression attribution
                                          # between two runs
    python -m repro obs flame LEDGER      # collapsed stacks (flamegraph)
    python -m repro obs validate LEDGER   # schema-check a ledger
    python -m repro --version             # print the package version

``--jobs N`` fans sweep shards out over N worker processes (results
stay byte-identical to serial runs); ``$REPRO_JOBS`` sets the default.
``--cache`` / ``--cache-dir`` reuse content-addressed shard results
from ``.repro-cache/`` (or ``$REPRO_CACHE_DIR``).  ``--machine M``
selects any preset from ``repro.machine.PRESETS`` (dash or underscore
spelling — ``frontier-like`` == ``frontier_like``; default lassen).
``--ledger PATH`` writes a schema-versioned JSONL run ledger (see
docs/observability.md) consumed by ``python -m repro obs``.

``report``, ``scenario``, ``perf`` and ``chaos`` also take
``--max-retries N`` / ``--task-timeout SECONDS`` / ``--resume``: any of
them opts the sweep into *supervised* execution — watchdog deadlines,
pool respawn after worker loss, seeded retry with quarantine, and
incremental checkpointing so a killed run can ``--resume`` and
re-execute only missing shards (see docs/resilience.md).
"""

from __future__ import annotations

import sys

#: every dispatchable subcommand — the unknown-command error lists
#: these, so the listing can never drift from the dispatch table below
#: (tests assert each one appears in the usage text).
COMMANDS = ("info", "report", "predict", "scenario", "perf", "trace",
            "chaos", "atlas", "obs")


def _info() -> None:
    import repro
    from repro.machine import PRESETS

    print(f"repro {repro.__version__} — node-aware communication strategies")
    print("machines:")
    for name, factory in PRESETS.items():
        m = factory()
        th = m.comm_params.thresholds
        print(f"  {name:14s} {m.sockets_per_node} socket(s) x "
              f"{m.gpus_per_socket} GPU(s), {m.cores_per_node} cores/node, "
              f"R_N = {m.nic.injection_rate:.2e} B/s")
        print(f"  {'':14s} short<={th.short_limit} B, "
              f"eager<={th.eager_limit} B, "
              f"gpu-eager<={th.gpu_eager_limit} B, "
              f"ppn<={m.cores_per_node}, gpn={m.gpus_per_node}")
        print(f"  {'':14s} NICs/node={m.nic.nics_per_node}, "
              f"node rate = {m.nic.node_injection_rate:.2e} B/s, "
              f"leaders/node={m.leaders_per_node}")
        tiers = []
        for tier in m.locality_hierarchy.tiers:
            extras = []
            if tier.alpha_scale != 1.0:
                extras.append(f"alpha x{tier.alpha_scale:g}")
            if tier.beta_scale != 1.0:
                extras.append(f"beta x{tier.beta_scale:g}")
            if tier.nic_share != 1.0:
                extras.append(f"nic share {tier.nic_share:g}")
            suffix = f" ({', '.join(extras)})" if extras else ""
            tiers.append(f"{tier.name}[{tier.base.name.lower()}]{suffix}")
        print(f"  {'':14s} tiers: {' -> '.join(tiers)}")
    from repro.core import all_strategies

    print("strategies:", ", ".join(s.label for s in all_strategies()))


def _predict(args: list) -> None:
    import argparse

    from repro.machine import resolve_machine
    from repro.models.scenarios import Scenario, scenario_summary
    from repro.models.strategies import all_strategy_models, model_label

    parser = argparse.ArgumentParser(
        prog="python -m repro predict",
        description="Model one Figure-4.3 scenario on a machine preset.")
    parser.add_argument("nodes", type=int, help="destination node count")
    parser.add_argument("msgs", type=int, help="messages per node")
    parser.add_argument("size", type=float, help="bytes per message")
    parser.add_argument("--machine", default="lassen", metavar="PRESET",
                        help="machine preset (see `python -m repro info`)")
    ns = parser.parse_args(args)
    machine = resolve_machine(ns.machine)
    sc = Scenario(num_dest_nodes=ns.nodes, num_messages=ns.msgs)
    summary = scenario_summary(machine, sc, ns.size)
    times = {model_label(m): m.time(summary)
             for m in all_strategy_models(machine)}
    best = min(times, key=lambda k: times[k])
    print(f"scenario: {sc.label}, {ns.size:g} B/message on {machine.name}")
    for label, t in sorted(times.items(), key=lambda kv: kv[1]):
        mark = "  <= best" if label == best else ""
        print(f"  {label:30s} {t:.3e} s{mark}")


def _scenario(args: list) -> int:
    import argparse
    import json

    import numpy as np

    from repro.bench.figures import render_series
    from repro.machine import resolve_machine
    from repro.models.scenarios import PAPER_SCENARIOS, sweep_scenarios
    from repro.par.cache import ResultCache, default_cache_dir
    from repro.par.cliopts import add_supervision_args, supervision_from_args

    parser = argparse.ArgumentParser(
        prog="python -m repro scenario",
        description="Sweep the paper's Figure-4.3 scenarios over message "
                    "sizes and print the modelled strategy times.")
    parser.add_argument("--machine", default="lassen", metavar="PRESET",
                        help="machine preset (see `python -m repro info`)")
    parser.add_argument("--points", type=int, default=9,
                        help="message sizes per scenario panel (default 9)")
    parser.add_argument("--extended", action="store_true",
                        help="also sweep the hierarchy-aware strategy "
                             "families (3-Step H, Neighbor P, ML 3-Step) "
                             "beyond the paper's Table-5 set")
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="worker processes (default: $REPRO_JOBS or "
                             "serial); results are byte-identical")
    parser.add_argument("--cache", action="store_true",
                        help="cache panel results on disk")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache directory (implies --cache)")
    parser.add_argument("-o", "--output", default=None,
                        help="also write the swept times as JSON here")
    parser.add_argument("--ledger", default=None, metavar="PATH",
                        help="write a JSONL run ledger here (consumed by "
                             "`python -m repro obs`)")
    add_supervision_args(parser)
    ns = parser.parse_args(args)
    machine = resolve_machine(ns.machine)
    cache = None
    if ns.cache or ns.cache_dir or ns.resume:
        cache = ResultCache(directory=ns.cache_dir or default_cache_dir())
    policy, journal_dir, resume = supervision_from_args(ns, cache)
    sizes = np.logspace(1, 5, ns.points)
    stats = None
    if ns.ledger:
        from repro.par.executor import SweepStats

        stats = SweepStats()
    swept = sweep_scenarios(machine, PAPER_SCENARIOS, sizes, jobs=ns.jobs,
                            cache=cache, stats=stats, policy=policy,
                            journal_dir=journal_dir, resume=resume,
                            include_extended=ns.extended)
    if ns.ledger:
        from repro.obs.ledger import RunLedger

        ledger = RunLedger(ns.ledger, "scenario",
                           {"machine": machine.name, "points": ns.points},
                           machine=machine.name)
        for sc, series in zip(PAPER_SCENARIOS, swept):
            for label, times in series.items():
                # One cell per (scenario panel, strategy model); the
                # panel's cost is the modelled time summed over sizes.
                ledger.event("cell", scenario=sc.label, strategy=label,
                             outcome="ok",
                             time_s=float(sum(float(t) for t in times)))
        if stats is not None:
            ledger.sweep(stats)
        if cache is not None:
            ledger.cache_events(cache)
        ledger.finish("ok")
    for sc, series in zip(PAPER_SCENARIOS, swept):
        print(render_series(f"scenario {sc.label} on {machine.name}",
                            "bytes/msg", sizes, series, mark_min=True))
        print()
    if ns.output:
        payload = {
            "machine": machine.name,
            "sizes": [float(s) for s in sizes],
            "scenarios": {
                sc.label: {label: [float(t) for t in times]
                           for label, times in series.items()}
                for sc, series in zip(PAPER_SCENARIOS, swept)
            },
        }
        with open(ns.output, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    if argv[0] in ("-V", "--version"):
        import repro

        print(f"repro {repro.__version__}")
        return 0
    cmd, rest = argv[0], argv[1:]
    if cmd == "info":
        _info()
    elif cmd == "report":
        from repro.bench.report import main as report_main

        return report_main(rest)
    elif cmd == "predict":
        _predict(rest)
    elif cmd == "scenario":
        return _scenario(rest)
    elif cmd == "perf":
        from repro.perf.suite import main as perf_main

        return perf_main(rest)
    elif cmd == "trace":
        from repro.obs.cli import main as trace_main

        return trace_main(rest)
    elif cmd == "chaos":
        from repro.faults.chaos import main as chaos_main

        return chaos_main(rest)
    elif cmd == "atlas":
        from repro.atlas.cli import main as atlas_main

        return atlas_main(rest)
    elif cmd == "obs":
        from repro.obs.analysis import main as obs_main

        return obs_main(rest)
    else:
        print(f"unknown command {cmd!r} "
              f"(commands: {', '.join(COMMANDS)})", file=sys.stderr)
        print(__doc__, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
