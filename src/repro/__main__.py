"""Command-line entry point.

Usage::

    python -m repro info                  # package + machine summary
    python -m repro report [out.md] [--jobs N] [--cache]
                                          # regenerate EXPERIMENTS body
    python -m repro predict N_NODES MSGS SIZE
                                          # model the Fig-4.3 scenario
    python -m repro perf [--smoke] [--repeats N] [--jobs N] [-o OUT.json]
                                          # wall-clock micro-suite ->
                                          # BENCH_repro.json
    python -m repro trace [SCENARIO] [--smoke] [-o trace.json]
                                          # traced run -> Perfetto JSON
    python -m repro chaos [--seed N] [--smoke] [--jobs N] [--cache]
                          [-o report.json]
                                          # randomized fault sweep with
                                          # engine invariant checks
    python -m repro --version             # print the package version

``--jobs N`` fans sweep shards out over N worker processes (results
stay byte-identical to serial runs); ``$REPRO_JOBS`` sets the default.
``--cache`` / ``--cache-dir`` reuse content-addressed shard results
from ``.repro-cache/`` (or ``$REPRO_CACHE_DIR``).
"""

from __future__ import annotations

import sys


def _info() -> None:
    import repro
    from repro.machine import PRESETS

    print(f"repro {repro.__version__} — node-aware communication strategies")
    print("machines:")
    for name, factory in PRESETS.items():
        m = factory()
        print(f"  {name:14s} {m.sockets_per_node} socket(s) x "
              f"{m.gpus_per_socket} GPU(s), {m.cores_per_node} cores/node, "
              f"R_N = {m.nic.injection_rate:.2e} B/s")
    from repro.core import all_strategies

    print("strategies:", ", ".join(s.label for s in all_strategies()))


def _predict(args: list) -> None:
    from repro.machine import lassen
    from repro.models.scenarios import Scenario, scenario_summary
    from repro.models.strategies import all_strategy_models, model_label

    if len(args) != 3:
        raise SystemExit("usage: python -m repro predict N_NODES MSGS SIZE")
    nodes, msgs, size = int(args[0]), int(args[1]), float(args[2])
    machine = lassen()
    sc = Scenario(num_dest_nodes=nodes, num_messages=msgs)
    summary = scenario_summary(machine, sc, size)
    times = {model_label(m): m.time(summary)
             for m in all_strategy_models(machine)}
    best = min(times, key=lambda k: times[k])
    print(f"scenario: {sc.label}, {size:g} B/message on {machine.name}")
    for label, t in sorted(times.items(), key=lambda kv: kv[1]):
        mark = "  <= best" if label == best else ""
        print(f"  {label:30s} {t:.3e} s{mark}")


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    if argv[0] in ("-V", "--version"):
        import repro

        print(f"repro {repro.__version__}")
        return 0
    cmd, rest = argv[0], argv[1:]
    if cmd == "info":
        _info()
    elif cmd == "report":
        from repro.bench.report import main as report_main

        return report_main(rest)
    elif cmd == "predict":
        _predict(rest)
    elif cmd == "perf":
        from repro.perf.suite import main as perf_main

        return perf_main(rest)
    elif cmd == "trace":
        from repro.obs.cli import main as trace_main

        return trace_main(rest)
    elif cmd == "chaos":
        from repro.faults.chaos import main as chaos_main

        return chaos_main(rest)
    else:
        print(f"unknown command {cmd!r}", file=sys.stderr)
        print(__doc__, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
