"""The shared costing kernel: one evaluator, two operand algebras.

Every cost in the analytic layer is produced here, by walking a
sequence of :class:`~repro.paths.ir.HopStage` records and charging each
hop from the machine's Table-2/3/4 constants.  The *same* code path
serves the scalar coster and the batched numpy coster: an :class:`Ops`
bundle supplies ``ceil``/``max``/``where``/protocol-selection operating
either on Python scalars (:data:`SCALAR_OPS`) or on numpy arrays
(:data:`ARRAY_OPS`).

Bit-exactness contract: for scalar inputs the kernel applies exactly
the floating-point operations (and order) of the historical hand-written
``_time`` bodies, and for array inputs exactly those of their
``*_vec`` twins — stage sums start from the first hop's cost, stages
accumulate left-associatively, and a ``repeat`` factor multiplies the
finished stage sum (exact for the power-of-two repeats the models use).
The goldens in ``tests/test_equivalence.py`` pin this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Tuple

import numpy as np

from repro.machine.locality import TransportKind
from repro.machine.topology import MachineSpec
from repro.paths.ir import Hop, HopKind, HopPlan, HopStage, Serialization


@dataclass(frozen=True)
class Ops:
    """Operand algebra the kernel is generic over."""

    name: str
    ceil: Callable[[Any], Any]
    maximum: Callable[[Any, Any], Any]
    minimum: Callable[[Any, Any], Any]
    where: Callable[[Any, Any, Any], Any]
    any: Callable[[Any], bool]
    #: ``link(machine, kind, locality, nbytes, pre_posted) -> (alpha,
    #: beta)`` with protocol selection by individual-message size
    link: Callable[[MachineSpec, TransportKind, Any, Any, bool], Any]


def _scalar_link(machine: MachineSpec, kind: TransportKind, locality,
                 nbytes, pre_posted: bool = False):
    if pre_posted:
        _protocol, link = machine.comm_params.persistent_link(
            kind, locality, nbytes)
    else:
        _protocol, link = machine.comm_params.for_message(
            kind, locality, nbytes)
    return link.alpha, link.beta


def _array_link(machine: MachineSpec, kind: TransportKind, locality, nbytes,
                pre_posted: bool = False):
    return machine.comm_params.link_arrays(kind, locality, nbytes,
                                           pre_posted=pre_posted)


SCALAR_OPS = Ops(
    name="scalar",
    ceil=math.ceil,
    maximum=max,
    minimum=min,
    where=lambda cond, a, b: a if cond else b,
    any=bool,
    link=_scalar_link,
)

ARRAY_OPS = Ops(
    name="array",
    ceil=np.ceil,
    maximum=np.maximum,
    minimum=np.minimum,
    where=np.where,
    any=np.any,
    link=_array_link,
)


def resolve_link(machine: MachineSpec, hop: Hop, ops: Ops) -> Any:
    """Tier-aware ``(alpha, beta)`` for a send hop.

    Protocol selection runs over the hop's flat ``locality`` (honoring
    ``pre_posted`` persistent channels); a tier index then refines the
    pair with the tier's alpha/beta scale factors.  Flat hops
    (``tier is None``) never consult the hierarchy — the degenerate
    case takes exactly the pre-hierarchy code path.
    """
    alpha, beta = ops.link(machine, hop.kind.transport_kind, hop.locality,
                           hop.nbytes, hop.pre_posted)
    if hop.tier is not None:
        tier = machine.locality_hierarchy[hop.tier]
        if tier.alpha_scale != 1.0:
            alpha = tier.alpha_scale * alpha
        if tier.beta_scale != 1.0:
            beta = tier.beta_scale * beta
    return alpha, beta


def cpu_injection_rate(machine: MachineSpec, hop: Hop) -> float:
    """Effective NIC rate (bytes/s) for one CPU MAX_RATE hop.

    The legacy node-aggregate rate unless the hop pins its senders to a
    port subset: an explicit ``nics_used`` serializes through
    ``min(nics_used, nics_per_node)`` ports and overrides the tier's
    ``nic_share``; otherwise a tier's share scales the node rate.
    """
    nic = machine.nic
    if hop.nics_used is not None:
        return nic.injection_rate * min(hop.nics_used, nic.nics_per_node)
    if hop.tier is not None:
        share = machine.locality_hierarchy[hop.tier].nic_share
        if share != 1.0:
            return nic.injection_rate * nic.nics_per_node * share
    return nic.injection_rate * nic.nics_per_node


def hop_cost(machine: MachineSpec, hop: Hop, ops: Ops) -> Any:
    """Cost of one hop from the machine's measured constants.

    SEQUENTIAL: postal model times count.  MAX_RATE: eq. (4.3) for CPU
    sends (NIC injection guard over the busiest node) or eq. (4.4) for
    GPU sends (postal, with the injection guard only on machines that
    declare a finite GPU injection rate).  MEMCPY: Table-3 row for the
    hop's direction and process count.
    """
    if hop.kind is HopKind.MEMCPY:
        link = machine.copy_params.link(hop.direction, hop.nproc)
        return link.alpha + link.beta * hop.nbytes
    alpha, beta = resolve_link(machine, hop, ops)
    if hop.serialization is Serialization.SEQUENTIAL:
        return hop.count * (alpha + beta * hop.nbytes)
    if hop.kind is HopKind.CPU_SEND:
        rn = cpu_injection_rate(machine, hop)
        return alpha * hop.count + ops.maximum(hop.node_bytes / rn,
                                               hop.total_bytes * beta)
    base = alpha * hop.count + hop.total_bytes * beta
    gpu_rate = machine.nic.gpu_injection_rate
    if gpu_rate != float("inf"):
        gpn = max(machine.gpus_per_node, 1)
        base = alpha * hop.count + ops.maximum(
            gpn * hop.total_bytes / (gpu_rate * machine.nic.nics_per_node),
            hop.total_bytes * beta)
    return base


def stage_cost(machine: MachineSpec, stage: HopStage, ops: Ops) -> Any:
    """Cost of one stage: hop costs summed in order, times ``repeat``.

    Conditional hops (``enabled`` other than the literal ``True``) fold
    onto the running sum through ``ops.where`` — replicating the scalar
    ``if`` branches and their ``np.where`` twins bitwise — and are
    skipped entirely when no element enables them.  SETUP stages
    amortize: the finished (repeated) sum divides by ``amortize_over``.
    """
    total = None
    for hop in stage.hops:
        if hop.enabled is True:
            cost = hop_cost(machine, hop, ops)
            total = cost if total is None else total + cost
        else:
            if not ops.any(hop.enabled):
                continue
            cost = hop_cost(machine, hop, ops)
            total = ops.where(hop.enabled, total + cost, total)
    if stage.repeat != 1.0:
        total = stage.repeat * total
    if stage.amortize_over != 1.0:
        total = total / stage.amortize_over
    return total


def evaluate_stages(machine: MachineSpec, stages: Sequence[HopStage],
                    ops: Ops) -> Any:
    """Total plan cost: stage costs summed left-associatively."""
    total = None
    for stage in stages:
        cost = stage_cost(machine, stage, ops)
        total = cost if total is None else total + cost
    return 0.0 if total is None else total


def cost_plan(machine: MachineSpec, plan: HopPlan,
              ops: Ops = SCALAR_OPS) -> Any:
    """Evaluate a compiled :class:`HopPlan` (scalar algebra by default)."""
    return evaluate_stages(machine, plan.stages, ops)


# -- fused multi-plan evaluation ---------------------------------------------
#
# The per-plan evaluator above walks stages/hops in Python once per
# (plan, element-batch) pair.  For whole-sweep costing — every strategy
# x every scenario cell x every message size — that walk itself becomes
# the bottleneck.  stack_plans() lowers a *list* of compiled plans into
# padded operand tensors of shape (plans, stages, hops, elements); the
# hop formulas then evaluate over the entire tensor with one numpy
# expression per formula, and FusedPlans.evaluate() folds hops and
# stages with the same left-associative order (explicit small loops, not
# pairwise np.sum) so every element's result is bit-identical to
# evaluate_stages() with ARRAY_OPS on that element's slice.
#
# Padding is engineered to be a bitwise no-op: padded hop slots carry
# alpha=beta=count=bytes=0 (their cost is exactly +0.0) and
# enabled=False (the where-fold leaves the running sum's bits alone);
# padded stages scale +0.0 by repeat 1.0 and add +0.0 to the plan total
# (exact for the non-negative totals the models produce).  MEMCPY hops
# share the SEQUENTIAL formula with count=1: ``1.0 * x`` is bit-identical
# to ``x``.


@dataclass(frozen=True)
class FusedPlans:
    """Padded operand tensors for a list of compiled plans.

    All array attributes have shape ``(S, St, H, N)``: ``S`` plans,
    ``St`` = max stages per plan, ``H`` = max hops per stage, ``N``
    elements (the width of the batch the plans were compiled from).
    """

    labels: Tuple[str, ...]
    alpha: np.ndarray
    beta: np.ndarray
    count: np.ndarray
    nbytes: np.ndarray
    total_bytes: np.ndarray
    node_bytes: np.ndarray
    enabled: np.ndarray          # bool: padded or disabled slots are False
    is_cpu_max_rate: np.ndarray  # bool, shape (S, St, H, 1)
    is_gpu_max_rate: np.ndarray  # bool, shape (S, St, H, 1)
    repeat: np.ndarray           # shape (S, St, 1)
    # machine constants captured at stack time
    cpu_rate_node: float         # injection_rate * nics_per_node
    gpu_rate: float              # gpu_injection_rate (may be inf)
    gpu_rate_denom: float        # gpu_injection_rate * nics_per_node
    gpus_per_node: int           # max(gpus_per_node, 1)
    # locality-hierarchy extensions; None for all-flat plan sets (the
    # evaluator then takes exactly the pre-hierarchy expressions)
    cpu_rate: Optional[np.ndarray] = None   # (S, St, H, 1) per-hop NIC rate
    amortize: Optional[np.ndarray] = None   # (S, St, 1) setup divisor

    @property
    def shape(self) -> Tuple[int, int, int, int]:
        return self.alpha.shape

    def evaluate(self) -> np.ndarray:
        """Cost every plan for every element: returns shape ``(S, N)``.

        Hop formulas run over the whole tensor; the three formula
        families are then selected per hop slot.  Folds are explicit
        left-associative loops over the (small) hop and stage axes so
        the accumulation order matches :func:`evaluate_stages` exactly.
        """
        alpha, beta, count = self.alpha, self.beta, self.count
        # SEQUENTIAL (and MEMCPY with count=1): postal model times count.
        cost = count * (alpha + beta * self.nbytes)
        if np.any(self.is_cpu_max_rate):
            rate = (self.cpu_rate if self.cpu_rate is not None
                    else self.cpu_rate_node)
            cpu_mr = alpha * count + np.maximum(
                self.node_bytes / rate,
                self.total_bytes * beta)
            cost = np.where(self.is_cpu_max_rate, cpu_mr, cost)
        if np.any(self.is_gpu_max_rate):
            if self.gpu_rate != float("inf"):
                gpu_mr = alpha * count + np.maximum(
                    self.gpus_per_node * self.total_bytes
                    / self.gpu_rate_denom,
                    self.total_bytes * beta)
            else:
                gpu_mr = alpha * count + self.total_bytes * beta
            cost = np.where(self.is_gpu_max_rate, gpu_mr, cost)
        # hop fold: the leading hop is unconditional by IR contract;
        # later hops fold through where() exactly like stage_cost().
        stage_total = cost[:, :, 0, :]
        for h in range(1, cost.shape[2]):
            stage_total = np.where(self.enabled[:, :, h, :],
                                   stage_total + cost[:, :, h, :],
                                   stage_total)
        scaled = self.repeat * stage_total
        if self.amortize is not None:
            scaled = scaled / self.amortize
        total = scaled[:, 0, :]
        for st in range(1, scaled.shape[1]):
            total = total + scaled[:, st, :]
        return total


def _plan_width(plans: Sequence[HopPlan]) -> int:
    """Element width of the batch the plans were compiled from."""
    for plan in plans:
        for stage in plan.stages:
            for hop in stage.hops:
                for q in (hop.count, hop.nbytes, hop.total_bytes,
                          hop.node_bytes, hop.enabled):
                    if isinstance(q, np.ndarray) and q.ndim == 1:
                        return int(q.size)
    return 1


def _fill(out: np.ndarray, value: Any) -> None:
    """Broadcast a scalar or (N,) quantity into one hop slot."""
    arr = np.asarray(value, dtype=out.dtype)
    if arr.ndim > 1 or (arr.ndim == 1 and arr.shape != out.shape):
        raise ValueError(
            f"hop quantity of shape {arr.shape} does not broadcast to "
            f"batch width {out.shape[0]}")
    out[...] = arr


def stack_plans(machine: MachineSpec, plans: Sequence[HopPlan],
                n: Optional[int] = None) -> FusedPlans:
    """Lower compiled plans into padded :class:`FusedPlans` tensors.

    ``n`` is the element width; inferred from the first array-valued hop
    quantity when omitted (``1`` for all-scalar plans).  Protocol
    selection (Table-2 alpha/beta per individual message size) happens
    here, once per real hop slot, via the same ``link_arrays`` chain the
    ARRAY_OPS kernel uses — so the tensors are a pure re-layout, not a
    re-derivation.
    """
    plans = list(plans)
    if not plans:
        raise ValueError("stack_plans requires at least one plan")
    if n is None:
        n = _plan_width(plans)
    n_stages = max(len(p.stages) for p in plans)
    n_hops = max((len(st.hops) for p in plans for st in p.stages), default=1)
    shape = (len(plans), max(n_stages, 1), max(n_hops, 1), n)
    nic = machine.nic
    rate_node = nic.injection_rate * nic.nics_per_node
    alpha = np.zeros(shape)
    beta = np.zeros(shape)
    count = np.zeros(shape)
    nbytes = np.zeros(shape)
    total_bytes = np.zeros(shape)
    node_bytes = np.zeros(shape)
    enabled = np.zeros(shape, dtype=bool)
    is_cpu_mr = np.zeros(shape[:3] + (1,), dtype=bool)
    is_gpu_mr = np.zeros(shape[:3] + (1,), dtype=bool)
    repeat = np.ones(shape[:2] + (1,))
    cpu_rate: Optional[np.ndarray] = None
    amortize: Optional[np.ndarray] = None
    for s, plan in enumerate(plans):
        for t, stage in enumerate(plan.stages):
            repeat[s, t, 0] = stage.repeat
            if stage.amortize_over != 1.0:
                if amortize is None:
                    amortize = np.ones(shape[:2] + (1,))
                amortize[s, t, 0] = stage.amortize_over
            for h, hop in enumerate(stage.hops):
                _fill(nbytes[s, t, h], hop.nbytes)
                if hop.kind is HopKind.MEMCPY:
                    link = machine.copy_params.link(hop.direction, hop.nproc)
                    alpha[s, t, h] = link.alpha
                    beta[s, t, h] = link.beta
                    count[s, t, h] = 1.0  # MEMCPY = SEQUENTIAL with count 1
                else:
                    a, b = machine.comm_params.link_arrays(
                        hop.kind.transport_kind, hop.locality,
                        nbytes[s, t, h], pre_posted=hop.pre_posted)
                    if hop.tier is not None:
                        tier = machine.locality_hierarchy[hop.tier]
                        if tier.alpha_scale != 1.0:
                            a = tier.alpha_scale * a
                        if tier.beta_scale != 1.0:
                            b = tier.beta_scale * b
                    alpha[s, t, h] = a
                    beta[s, t, h] = b
                    _fill(count[s, t, h], hop.count)
                    if hop.serialization is Serialization.MAX_RATE:
                        _fill(total_bytes[s, t, h], hop.total_bytes)
                        if hop.kind is HopKind.CPU_SEND:
                            _fill(node_bytes[s, t, h], hop.node_bytes)
                            is_cpu_mr[s, t, h, 0] = True
                            rate = cpu_injection_rate(machine, hop)
                            if rate != rate_node and cpu_rate is None:
                                cpu_rate = np.full(shape[:3] + (1,),
                                                   rate_node)
                            if cpu_rate is not None:
                                cpu_rate[s, t, h, 0] = rate
                        else:
                            is_gpu_mr[s, t, h, 0] = True
                enabled[s, t, h] = (True if hop.enabled is True
                                    else np.asarray(hop.enabled, dtype=bool))
    return FusedPlans(
        labels=tuple(p.strategy for p in plans),
        alpha=alpha, beta=beta, count=count, nbytes=nbytes,
        total_bytes=total_bytes, node_bytes=node_bytes,
        enabled=enabled, is_cpu_max_rate=is_cpu_mr,
        is_gpu_max_rate=is_gpu_mr, repeat=repeat,
        cpu_rate_node=rate_node,
        gpu_rate=nic.gpu_injection_rate,
        gpu_rate_denom=nic.gpu_injection_rate * nic.nics_per_node,
        gpus_per_node=max(machine.gpus_per_node, 1),
        cpu_rate=cpu_rate, amortize=amortize,
    )


def evaluate_plans_fused(machine: MachineSpec, plans: Sequence[HopPlan],
                         n: Optional[int] = None) -> np.ndarray:
    """Cost all ``plans`` over their shared batch in one fused pass.

    Returns shape ``(len(plans), N)``; row ``s`` is bit-identical to
    ``evaluate_stages(machine, plans[s].stages, ARRAY_OPS)``.
    """
    return stack_plans(machine, plans, n).evaluate()
