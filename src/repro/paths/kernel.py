"""The shared costing kernel: one evaluator, two operand algebras.

Every cost in the analytic layer is produced here, by walking a
sequence of :class:`~repro.paths.ir.HopStage` records and charging each
hop from the machine's Table-2/3/4 constants.  The *same* code path
serves the scalar coster and the batched numpy coster: an :class:`Ops`
bundle supplies ``ceil``/``max``/``where``/protocol-selection operating
either on Python scalars (:data:`SCALAR_OPS`) or on numpy arrays
(:data:`ARRAY_OPS`).

Bit-exactness contract: for scalar inputs the kernel applies exactly
the floating-point operations (and order) of the historical hand-written
``_time`` bodies, and for array inputs exactly those of their
``*_vec`` twins — stage sums start from the first hop's cost, stages
accumulate left-associatively, and a ``repeat`` factor multiplies the
finished stage sum (exact for the power-of-two repeats the models use).
The goldens in ``tests/test_equivalence.py`` pin this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.machine.locality import TransportKind
from repro.machine.topology import MachineSpec
from repro.paths.ir import Hop, HopKind, HopPlan, HopStage, Serialization


@dataclass(frozen=True)
class Ops:
    """Operand algebra the kernel is generic over."""

    name: str
    ceil: Callable[[Any], Any]
    maximum: Callable[[Any, Any], Any]
    minimum: Callable[[Any, Any], Any]
    where: Callable[[Any, Any, Any], Any]
    any: Callable[[Any], bool]
    #: ``link(machine, kind, locality, nbytes) -> (alpha, beta)`` with
    #: protocol selection by individual-message size
    link: Callable[[MachineSpec, TransportKind, Any, Any], Any]


def _scalar_link(machine: MachineSpec, kind: TransportKind, locality,
                 nbytes):
    _protocol, link = machine.comm_params.for_message(kind, locality, nbytes)
    return link.alpha, link.beta


def _array_link(machine: MachineSpec, kind: TransportKind, locality, nbytes):
    return machine.comm_params.link_arrays(kind, locality, nbytes)


SCALAR_OPS = Ops(
    name="scalar",
    ceil=math.ceil,
    maximum=max,
    minimum=min,
    where=lambda cond, a, b: a if cond else b,
    any=bool,
    link=_scalar_link,
)

ARRAY_OPS = Ops(
    name="array",
    ceil=np.ceil,
    maximum=np.maximum,
    minimum=np.minimum,
    where=np.where,
    any=np.any,
    link=_array_link,
)


def hop_cost(machine: MachineSpec, hop: Hop, ops: Ops) -> Any:
    """Cost of one hop from the machine's measured constants.

    SEQUENTIAL: postal model times count.  MAX_RATE: eq. (4.3) for CPU
    sends (NIC injection guard over the busiest node) or eq. (4.4) for
    GPU sends (postal, with the injection guard only on machines that
    declare a finite GPU injection rate).  MEMCPY: Table-3 row for the
    hop's direction and process count.
    """
    if hop.kind is HopKind.MEMCPY:
        link = machine.copy_params.link(hop.direction, hop.nproc)
        return link.alpha + link.beta * hop.nbytes
    alpha, beta = ops.link(machine, hop.kind.transport_kind, hop.locality,
                           hop.nbytes)
    if hop.serialization is Serialization.SEQUENTIAL:
        return hop.count * (alpha + beta * hop.nbytes)
    if hop.kind is HopKind.CPU_SEND:
        rn = machine.nic.injection_rate * machine.nic.nics_per_node
        return alpha * hop.count + ops.maximum(hop.node_bytes / rn,
                                               hop.total_bytes * beta)
    base = alpha * hop.count + hop.total_bytes * beta
    gpu_rate = machine.nic.gpu_injection_rate
    if gpu_rate != float("inf"):
        gpn = max(machine.gpus_per_node, 1)
        base = alpha * hop.count + ops.maximum(
            gpn * hop.total_bytes / (gpu_rate * machine.nic.nics_per_node),
            hop.total_bytes * beta)
    return base


def stage_cost(machine: MachineSpec, stage: HopStage, ops: Ops) -> Any:
    """Cost of one stage: hop costs summed in order, times ``repeat``.

    Conditional hops (``enabled`` other than the literal ``True``) fold
    onto the running sum through ``ops.where`` — replicating the scalar
    ``if`` branches and their ``np.where`` twins bitwise — and are
    skipped entirely when no element enables them.
    """
    total = None
    for hop in stage.hops:
        if hop.enabled is True:
            cost = hop_cost(machine, hop, ops)
            total = cost if total is None else total + cost
        else:
            if not ops.any(hop.enabled):
                continue
            cost = hop_cost(machine, hop, ops)
            total = ops.where(hop.enabled, total + cost, total)
    if stage.repeat != 1.0:
        total = stage.repeat * total
    return total


def evaluate_stages(machine: MachineSpec, stages: Sequence[HopStage],
                    ops: Ops) -> Any:
    """Total plan cost: stage costs summed left-associatively."""
    total = None
    for stage in stages:
        cost = stage_cost(machine, stage, ops)
        total = cost if total is None else total + cost
    return 0.0 if total is None else total


def cost_plan(machine: MachineSpec, plan: HopPlan,
              ops: Ops = SCALAR_OPS) -> Any:
    """Evaluate a compiled :class:`HopPlan` (scalar algebra by default)."""
    return evaluate_stages(machine, plan.stages, ops)
