"""Canonical stage builders: paper terms (4.1)–(4.5) as hop stages.

Each builder turns one model term into a :class:`~repro.paths.ir.HopStage`
— the hop *counts and sizes* live here, the cost arithmetic lives in
:mod:`repro.paths.kernel`.  The scalar sub-model wrappers in
:mod:`repro.models.submodels`, their vectorized twins in
:mod:`repro.models.vectorized`, and the strategy compilers in
:mod:`repro.models.strategies` all build their stages through these
functions, so a hop decision exists in exactly one place.

Builders that branch on data (eq. 4.2's socket occupancy, the Split
message-cap resolution) take an :class:`~repro.paths.kernel.Ops`
bundle so one body serves scalars and arrays.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional, Tuple

from repro.machine.locality import CopyDirection, Locality
from repro.machine.topology import MachineSpec
from repro.paths.ir import (
    CheckMode,
    Hop,
    HopKind,
    HopStage,
    Serialization,
    StageKind,
)
from repro.paths.kernel import Ops


def on_node_stage(machine: MachineSpec, hop_kind: HopKind, s: Any, *,
                  phases: Tuple[str, ...], repeat: float = 1.0,
                  label: str = "on-node") -> HopStage:
    """Eq. (4.1): worst-case on-node gather/redistribution fan-out.

    ``(gps - 1)`` on-socket hops of ``s`` bytes each, plus ``gps``
    cross-socket hops on multi-socket nodes.
    """
    gps = machine.gpus_per_socket
    hops = [Hop(kind=hop_kind, locality=Locality.ON_SOCKET, count=gps - 1,
                nbytes=s, serialization=Serialization.SEQUENTIAL,
                phase=phases[0])]
    if machine.sockets_per_node > 1:
        hops.append(Hop(kind=hop_kind, locality=Locality.ON_NODE, count=gps,
                        nbytes=s, serialization=Serialization.SEQUENTIAL,
                        phase=phases[0]))
    return HopStage(label=label, hops=tuple(hops), repeat=repeat,
                    phases=phases, check=CheckMode.BOUND_RANK)


def hierarchical_on_node_stage(machine: MachineSpec, hop_kind: HopKind,
                               s: Any, *, phases: Tuple[str, ...],
                               repeat: float = 1.0,
                               label: str = "hierarchical on-node"
                               ) -> HopStage:
    """Hierarchical 3-Step gather: socket leaders combine before crossing.

    ``(gps - 1)`` on-socket hops of ``s`` bytes, then ``(sockets - 1)``
    cross-socket hops of the socket-combined ``gps * s`` bytes.
    """
    gps = machine.gpus_per_socket
    hops = [Hop(kind=hop_kind, locality=Locality.ON_SOCKET, count=gps - 1,
                nbytes=s, serialization=Serialization.SEQUENTIAL,
                phase=phases[0])]
    if machine.sockets_per_node > 1:
        combined = gps * s
        hops.append(Hop(kind=hop_kind, locality=Locality.ON_NODE,
                        count=machine.sockets_per_node - 1, nbytes=combined,
                        serialization=Serialization.SEQUENTIAL,
                        phase=phases[0]))
    return HopStage(label=label, hops=tuple(hops), repeat=repeat,
                    phases=phases, check=CheckMode.BOUND_RANK)


def split_on_node_stage(machine: MachineSpec, s_total: Any, ppg: int,
                        ppn: int, active_gpus: Any, ops: Ops, *,
                        phases: Tuple[str, ...], repeat: float = 1.0,
                        label: str = "split on-node") -> HopStage:
    """Eq. (4.2): Split's on-node distribution across ``ppn`` processes.

    ``s_total`` bytes split into ``ppn`` messages of ``s_total / ppn``;
    each of the distributing sockets fans out on-socket, and sockets
    without a distributor are fed by conditional cross-socket hops.

    The hop counts are *per-distributor average shares*, so the DES
    cross-check uses :attr:`CheckMode.BOUND_TOTAL`: the busiest rank
    may exceed its modelled share, but the lane as a whole cannot move
    more than ``s_total`` (carried on the hops as ``node_bytes``) per
    repetition.
    """
    if ppg < 1:
        raise ValueError(f"ppg must be >= 1, got {ppg!r}")
    pps = machine.cores_per_socket
    sockets = machine.sockets_per_node
    if ppg > pps:
        raise ValueError(f"ppg={ppg} exceeds processes per socket {pps}")
    active = ops.minimum(active_gpus, max(machine.gpus_per_node, 1))
    if ppn <= 0:
        ppn = machine.cores_per_node
    s_msg = s_total / ppn
    gps = max(machine.gpus_per_socket, 1)
    # Sockets hosting at least one distributing (copying) process.
    sockets_with = ops.minimum(sockets, ops.ceil(active / gps))
    dist_per_socket = ops.ceil(active / sockets_with) * ppg
    # On-socket fan-out: the socket's pps receivers shared among its
    # distributors, minus the share a distributor keeps for itself.
    n_os = ops.maximum(pps / dist_per_socket - 1, 0.0)
    hops = [Hop(kind=HopKind.CPU_SEND, locality=Locality.ON_SOCKET,
                count=n_os, nbytes=s_msg, node_bytes=s_total,
                serialization=Serialization.SEQUENTIAL, phase=phases[0])]
    # Sockets without distributors are reached via on-node messages,
    # shared among all distributors.
    lacking = sockets_with < sockets
    n_on = (sockets - sockets_with) * pps / (sockets_with * dist_per_socket)
    hops.append(Hop(kind=HopKind.CPU_SEND, locality=Locality.ON_NODE,
                    count=n_on, nbytes=s_msg, node_bytes=s_total,
                    serialization=Serialization.SEQUENTIAL, phase=phases[0],
                    enabled=lacking))
    return HopStage(label=label, hops=tuple(hops), repeat=repeat,
                    phases=phases, check=CheckMode.BOUND_TOTAL)


def off_node_stage(m: Any, s_proc: Any, s_node: Any, msg_size: Any, *,
                   phase: str = "inter-node",
                   check: CheckMode = CheckMode.EXACT_RANK,
                   node_count: Any = None,
                   tier: Optional[int] = None,
                   nics_used: Optional[int] = None,
                   pre_posted: bool = False,
                   label: str = "off-node") -> HopStage:
    """Eq. (4.3): staged off-node sends under the max-rate model.

    ``m`` messages of ``msg_size`` each from the busiest process
    (``s_proc`` bytes), rate-limited by the busiest node's ``s_node``
    bytes through the NIC.  Tier-aware strategies refine the term with
    ``tier`` (per-tier alpha/beta scales + NIC share), ``nics_used``
    (explicit injection-port count) and ``pre_posted`` (persistent
    channels); all default to the flat pre-hierarchy model.
    """
    hop = Hop(kind=HopKind.CPU_SEND, locality=Locality.OFF_NODE, count=m,
              nbytes=msg_size, serialization=Serialization.MAX_RATE,
              phase=phase, total_bytes=s_proc, node_bytes=s_node,
              node_count=node_count, tier=tier, nics_used=nics_used,
              pre_posted=pre_posted)
    return HopStage(label=label, hops=(hop,), phases=(phase,), check=check)


def device_off_node_stage(m: Any, s_proc: Any, msg_size: Any, *,
                          phase: str = "inter-node",
                          check: CheckMode = CheckMode.EXACT_RANK,
                          tier: Optional[int] = None,
                          pre_posted: bool = False,
                          label: str = "device off-node") -> HopStage:
    """Eq. (4.4): device-aware off-node sends, postal form.

    The GPU injection guard (machines declaring a finite GPU rate)
    lives in the kernel, keyed off the hop's MAX_RATE serialization.
    """
    hop = Hop(kind=HopKind.GPU_SEND, locality=Locality.OFF_NODE, count=m,
              nbytes=msg_size, serialization=Serialization.MAX_RATE,
              phase=phase, total_bytes=s_proc, tier=tier,
              pre_posted=pre_posted)
    return HopStage(label=label, hops=(hop,), phases=(phase,), check=check)


def copy_stage(s_send: Any, s_recv: Any, nproc: int = 1, *,
               label: str = "staging copies") -> HopStage:
    """Eq. (4.5): D2H off the source GPU plus H2D onto the destination.

    Two MEMCPY hops in one stage (their sum is the single ``T_copy``
    term).  Copies do not appear in the message trace, so the stage is
    skipped by the DES cross-check.
    """
    hops = (
        Hop(kind=HopKind.MEMCPY, direction=CopyDirection.D2H, count=1,
            nbytes=s_send, nproc=nproc, phase="copy"),
        Hop(kind=HopKind.MEMCPY, direction=CopyDirection.H2D, count=1,
            nbytes=s_recv, nproc=nproc, phase="copy"),
    )
    return HopStage(label=label, hops=hops, phases=(), check=CheckMode.SKIP)


def as_setup(stage: HopStage, amortize_over: float, *,
             label: Optional[str] = None) -> HopStage:
    """Re-cast a transfer stage as its one-time SETUP counterpart.

    Persistent neighborhood collectives pay one full-price exchange up
    front (buffer registration + the rendezvous handshakes that later
    pre-posted rounds skip); amortized over the persistence window of
    ``amortize_over`` exchanges, that cost is this stage.  The returned
    stage drops its tracer lanes and check (setup traffic is not part
    of the steady-state message trace) and clears ``pre_posted`` on
    every hop — setup itself runs at transient-protocol price.
    """
    hops = tuple(
        dataclasses.replace(hop, pre_posted=False) if hop.pre_posted else hop
        for hop in stage.hops)
    return dataclasses.replace(
        stage, label=label if label is not None else f"{stage.label} setup",
        hops=hops, phases=(), check=CheckMode.SKIP,
        kind=StageKind.SETUP, amortize_over=amortize_over)
