"""Declarative hop-plan IR and the shared costing kernel.

Each strategy model compiles ``(pattern summary, machine, layout)``
into a :class:`HopPlan` — an ordered sequence of typed hop stages —
which one kernel then evaluates three ways: scalar analytic cost,
batched numpy cost over a sweep, and a structural cross-check against
the messages a DES program actually put on the wire.  See
``docs/api.md`` ("Path IR & costing kernel").
"""

from repro.paths.ir import (
    CheckMode,
    Hop,
    HopKind,
    HopPlan,
    HopStage,
    Serialization,
    StageKind,
)
from repro.paths.kernel import (
    ARRAY_OPS,
    SCALAR_OPS,
    FusedPlans,
    Ops,
    cost_plan,
    evaluate_plans_fused,
    evaluate_stages,
    hop_cost,
    stack_plans,
    stage_cost,
)
from repro.paths.compile import (
    as_setup,
    copy_stage,
    device_off_node_stage,
    hierarchical_on_node_stage,
    off_node_stage,
    on_node_stage,
    split_on_node_stage,
)
from repro.paths.check import (
    PhaseProfile,
    assert_plan_matches_trace,
    check_plan_against_trace,
    profile_trace,
)

__all__ = [
    "CheckMode",
    "Hop",
    "HopKind",
    "HopPlan",
    "HopStage",
    "Serialization",
    "StageKind",
    "Ops",
    "SCALAR_OPS",
    "ARRAY_OPS",
    "hop_cost",
    "stage_cost",
    "evaluate_stages",
    "cost_plan",
    "FusedPlans",
    "stack_plans",
    "evaluate_plans_fused",
    "on_node_stage",
    "hierarchical_on_node_stage",
    "split_on_node_stage",
    "off_node_stage",
    "device_off_node_stage",
    "copy_stage",
    "as_setup",
    "PhaseProfile",
    "profile_trace",
    "check_plan_against_trace",
    "assert_plan_matches_trace",
]
