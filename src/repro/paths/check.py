"""Structural cross-check: DES message traces vs. compiled hop plans.

The third consumer of the HopPlan IR.  A ``core.*`` strategy program,
run under ``SimJob(..., trace=True)``, leaves a list of
``MessageTrace`` records whose ``phase`` lane is derived from the
message tag.  This module groups that trace by lane and verifies it
against the plan the strategy model compiled for the same pattern
summary:

* every traced lane must be realized by a plan stage (or declared
  uncosted, e.g. ``"on-node direct"`` local deliveries);
* per lane, the transport kinds and localities on the wire must match
  the stage's declared hops;
* per stage, counts and bytes are compared according to the stage's
  :class:`~repro.paths.ir.CheckMode` — the busiest-rank stages of the
  Standard/3-Step/2-Step off-node legs match *exactly*, Split's
  chunked inter-node leg matches on phase totals, and the worst-case
  on-node fan-out terms bound the observed busiest-rank bytes.

Checks return violation strings rather than raising so callers (tests,
the chaos harness) can aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set

from repro.machine.locality import Locality, TransportKind
from repro.paths.ir import CheckMode, HopKind, HopPlan, HopStage, StageKind


@dataclass
class PhaseProfile:
    """Aggregate of one tracer lane of a message trace."""

    messages: int = 0
    nbytes: int = 0
    rank_messages: Dict[int, int] = field(default_factory=dict)
    rank_bytes: Dict[int, int] = field(default_factory=dict)
    kinds: Set[TransportKind] = field(default_factory=set)
    localities: Set[Locality] = field(default_factory=set)

    @property
    def max_rank_messages(self) -> int:
        return max(self.rank_messages.values(), default=0)

    @property
    def max_rank_bytes(self) -> int:
        return max(self.rank_bytes.values(), default=0)


def profile_trace(trace: Iterable) -> Dict[str, PhaseProfile]:
    """Group a ``MessageTrace`` list by phase lane, per-sender."""
    profiles: Dict[str, PhaseProfile] = {}
    for t in trace:
        prof = profiles.setdefault(t.phase, PhaseProfile())
        prof.messages += 1
        prof.nbytes += t.nbytes
        prof.rank_messages[t.src] = prof.rank_messages.get(t.src, 0) + 1
        prof.rank_bytes[t.src] = prof.rank_bytes.get(t.src, 0) + t.nbytes
        prof.kinds.add(t.kind)
        prof.localities.add(t.locality)
    return profiles


def _declared_hops(stage: HopStage):
    """Every trace-visible hop, conditional or not.

    A hop's ``enabled`` flag gates *costing* — a disabled conditional
    hop (eq. 4.2's cross-socket feed when every socket has its own
    distributor) still documents a legitimate locality for the lane,
    because the DES charges those bytes to a different hop rather than
    not sending them.
    """
    return [h for h in stage.hops if h.kind is not HopKind.MEMCPY]


def _stage_hops(stage: HopStage):
    """The stage's enabled, trace-visible hops (the costed set)."""
    return [h for h in stage.hops
            if h.kind is not HopKind.MEMCPY and bool(h.enabled)]


def _as_int(value) -> int:
    """Round a model quantity (int-valued float) to an integer."""
    return int(round(float(value)))


def check_plan_against_trace(plan: HopPlan, trace: Sequence) -> List[str]:
    """Violations of the plan/trace consistency contract (empty = ok)."""
    out: List[str] = []
    who = f"{plan.strategy} ({plan.data_path})"
    profiles = profile_trace(trace)

    # 1. Lane discipline: nothing on the wire outside the declared plan.
    for phase, prof in profiles.items():
        if phase in plan.uncosted_phases:
            continue
        stage = plan.stage_for_phase(phase)
        if stage is None:
            out.append(
                f"{who}: traced phase {phase!r} ({prof.messages} msgs) is "
                f"realized by no plan stage and not declared uncosted")
            continue
        hops = _declared_hops(stage)
        allowed_kinds = {h.kind.transport_kind for h in hops}
        allowed_locs = {h.locality for h in hops}
        bad_kinds = prof.kinds - allowed_kinds
        if bad_kinds:
            out.append(
                f"{who}: phase {phase!r} carries {sorted(k.name for k in bad_kinds)} "
                f"messages; stage {stage.label!r} declares "
                f"{sorted(k.name for k in allowed_kinds)}")
        bad_locs = prof.localities - allowed_locs
        if bad_locs:
            out.append(
                f"{who}: phase {phase!r} carries "
                f"{sorted(l.name for l in bad_locs)} messages; stage "
                f"{stage.label!r} declares "
                f"{sorted(l.name for l in allowed_locs)}")

    # 2. Per-stage count/byte agreement, by declared strictness.
    for stage in plan.stages:
        if stage.kind is StageKind.SETUP or stage.check is CheckMode.SKIP:
            continue
        hops = _stage_hops(stage)
        if not hops:
            continue
        expected_msgs = sum(_as_int(h.count) for h in hops)
        expected_bytes = sum(
            float(h.total_bytes) if h.total_bytes is not None
            else float(h.count) * float(h.nbytes)
            for h in hops)
        for phase in stage.phases:
            prof = profiles.get(phase)
            if stage.check is CheckMode.EXACT_RANK:
                if prof is None:
                    if expected_msgs > 0:
                        out.append(
                            f"{who}: stage {stage.label!r} expects "
                            f"{expected_msgs} msgs in phase {phase!r}; "
                            f"trace has none")
                    continue
                if prof.max_rank_messages != expected_msgs:
                    out.append(
                        f"{who}: phase {phase!r} busiest rank sent "
                        f"{prof.max_rank_messages} msgs; stage "
                        f"{stage.label!r} expects {expected_msgs}")
                if prof.max_rank_bytes != _as_int(expected_bytes):
                    out.append(
                        f"{who}: phase {phase!r} busiest rank sent "
                        f"{prof.max_rank_bytes} B; stage {stage.label!r} "
                        f"expects {_as_int(expected_bytes)}")
            elif stage.check is CheckMode.NODE_TOTAL:
                hop = hops[0]
                node_msgs = _as_int(hop.node_count if hop.node_count
                                    is not None else hop.count)
                node_bytes = _as_int(hop.node_bytes if hop.node_bytes
                                     is not None else expected_bytes)
                if prof is None:
                    if node_msgs > 0:
                        out.append(
                            f"{who}: stage {stage.label!r} expects "
                            f"{node_msgs} msgs in phase {phase!r}; "
                            f"trace has none")
                    continue
                if prof.messages != node_msgs:
                    out.append(
                        f"{who}: phase {phase!r} carried {prof.messages} "
                        f"msgs in total; stage {stage.label!r} expects "
                        f"{node_msgs}")
                if prof.nbytes != node_bytes:
                    out.append(
                        f"{who}: phase {phase!r} carried {prof.nbytes} B "
                        f"in total; stage {stage.label!r} expects "
                        f"{node_bytes}")
            elif stage.check is CheckMode.BOUND_TOTAL:
                # Average-share terms (eq. 4.2): the busiest rank can
                # exceed its modelled share, but the lane cannot move
                # more than the stage's payload per repetition.
                if prof is None:
                    continue
                hop = hops[0]
                payload = (float(hop.node_bytes) if hop.node_bytes
                           is not None else expected_bytes)
                if prof.nbytes > payload * (1.0 + 1e-9):
                    out.append(
                        f"{who}: phase {phase!r} moved {prof.nbytes} B "
                        f"in total, above the stage {stage.label!r} "
                        f"payload {payload:.1f} B")
            else:  # BOUND_RANK — the model term is a worst-case bound
                if prof is None:
                    continue
                bound = expected_bytes * (1.0 + 1e-9)
                if prof.max_rank_bytes > bound:
                    out.append(
                        f"{who}: phase {phase!r} busiest rank sent "
                        f"{prof.max_rank_bytes} B, above the stage "
                        f"{stage.label!r} worst-case bound "
                        f"{expected_bytes:.1f} B")
    return out


def assert_plan_matches_trace(plan: HopPlan, trace: Sequence) -> None:
    """Raise ``AssertionError`` listing every plan/trace violation."""
    violations = check_plan_against_trace(plan, trace)
    assert not violations, "\n".join(violations)
