"""The HopPlan intermediate representation.

A *hop plan* is the declarative form of one (strategy, data path)
combination of paper Table 5: an ordered sequence of :class:`HopStage`
records, each describing typed message hops over the machine — how many
messages, how large, over which locality, serialized how (one after the
other vs. rate-limited in parallel).  The plan is the single source of
truth shared by three consumers:

* the scalar analytic coster (``StrategyModel.time``),
* the batched numpy coster (``StrategyModel.time_sweep``),
* the DES structural cross-check (:mod:`repro.paths.check`), which
  verifies that the transport operations a ``core.*`` program actually
  emitted (per tracer phase lane) are consistent with the plan's stages.

Quantities (``count``, ``nbytes``, …) are either Python scalars (plans
compiled from one :class:`~repro.models.pattern_summary.PatternSummary`)
or numpy arrays (plans compiled from a
:class:`~repro.models.vectorized.SummaryBatch` sweep); the costing
kernel in :mod:`repro.paths.kernel` is generic over both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.machine.locality import CopyDirection, Locality, TransportKind


class HopKind(enum.Enum):
    """Transport type of one hop."""

    CPU_SEND = "cpu-send"    # host-to-host MPI message
    GPU_SEND = "gpu-send"    # device-aware MPI message
    MEMCPY = "memcpy"        # D2H / H2D staging copy

    @property
    def transport_kind(self) -> Optional[TransportKind]:
        """The Table-2 row family this hop's messages are costed from."""
        if self is HopKind.CPU_SEND:
            return TransportKind.CPU
        if self is HopKind.GPU_SEND:
            return TransportKind.GPU
        return None


class Serialization(enum.Enum):
    """How a hop's ``count`` messages occupy the wire.

    SEQUENTIAL
        One after the other: ``count * (alpha + beta * nbytes)`` —
        the postal model of the on-node gather fan-outs (eq. 4.1/4.2).
    MAX_RATE
        Latencies serialize but payloads stream concurrently, limited
        by the busiest-process bandwidth and (CPU path) the node's NIC
        injection rate — eq. (4.3)'s max-rate form, or eq. (4.4)'s
        postal form with the optional GPU injection guard.
    """

    SEQUENTIAL = "sequential"
    MAX_RATE = "max-rate"


class StageKind(enum.Enum):
    """What a stage's cost represents.

    TRANSFER
        A per-exchange data-movement term — every pre-hierarchy stage.
    SETUP
        One-time channel establishment (persistent neighborhood
        collectives: buffer registration + the RTS/CTS handshakes the
        pre-posted channels skip later).  Setup stages amortize over
        ``HopStage.amortize_over`` exchanges and are invisible to the
        DES message trace (the cross-check skips them).
    """

    TRANSFER = "transfer"
    SETUP = "setup"


class CheckMode(enum.Enum):
    """How the DES cross-check compares a stage against a trace lane.

    The analytic models describe the *busiest* participant, and some
    stages are deliberate worst-case bounds — so each stage declares how
    literally its numbers should match the simulated message trace.
    """

    EXACT_RANK = "exact-rank"    # busiest-rank messages/bytes match exactly
    NODE_TOTAL = "node-total"    # phase totals match node_count/node_bytes
    BOUND_RANK = "bound-rank"    # busiest-rank bytes bounded by the model
    BOUND_TOTAL = "bound-total"  # phase-total bytes bounded by the payload
    SKIP = "skip"                # not observable in the message trace


@dataclass(frozen=True, eq=False)
class Hop:
    """One typed hop: ``count`` messages of ``nbytes`` each.

    ``nbytes`` is the *individual* message size (it drives protocol
    selection); MAX_RATE hops carry the busiest-process total in
    ``total_bytes`` and the busiest-node total in ``node_bytes``.
    ``enabled`` gates conditional hops (scalar bool or boolean array) —
    eq. (4.2)'s cross-socket term exists only when some socket hosts no
    distributor.  MEMCPY hops use ``direction``/``nproc`` instead of a
    locality.

    Locality-hierarchy extensions (all optional — a hop that sets none
    of them costs bit-identically to the flat pre-hierarchy model):

    ``tier``
        Index into the machine's
        :class:`~repro.machine.locality.LocalityHierarchy`.  The hop
        still carries its flat ``locality`` (the Table-2 row family and
        the DES trace lane discipline key); the tier refines the cost
        with per-tier alpha/beta scales and the tier's NIC share.
    ``nics_used``
        How many of a multi-NIC node's ports this hop's senders can
        inject through concurrently (CPU MAX_RATE hops).  ``None``
        keeps the legacy node-aggregate rate; setting it serializes the
        NIC term through ``min(nics_used, nics_per_node)`` ports and
        overrides the tier's ``nic_share``.
    ``pre_posted``
        Persistent-channel semantics: rendezvous-sized messages pay the
        eager latency but keep the rendezvous bandwidth (receives were
        posted at setup).  Below the rendezvous threshold this is a
        no-op.
    """

    kind: HopKind
    count: Any
    nbytes: Any
    serialization: Serialization = Serialization.SEQUENTIAL
    phase: str = ""
    locality: Optional[Locality] = None
    total_bytes: Any = None      # busiest-process bytes (MAX_RATE)
    node_bytes: Any = None       # busiest-node bytes (CPU MAX_RATE)
    node_count: Any = None       # phase-total messages (NODE_TOTAL check)
    direction: Optional[CopyDirection] = None   # MEMCPY only
    nproc: int = 1               # MEMCPY: concurrent copying processes
    enabled: Any = True
    tier: Optional[int] = None   # locality-hierarchy tier index
    nics_used: Optional[int] = None  # concurrent injection ports
    pre_posted: bool = False     # persistent (pre-registered) channel

    def __post_init__(self) -> None:
        if self.kind is HopKind.MEMCPY:
            if self.direction is None:
                raise ValueError("MEMCPY hop requires a direction")
        elif self.locality is None:
            raise ValueError(f"{self.kind} hop requires a locality")
        if self.tier is not None and self.tier < 0:
            raise ValueError(f"tier index must be >= 0, got {self.tier!r}")
        if self.nics_used is not None and self.nics_used < 1:
            raise ValueError(
                f"nics_used must be a count >= 1, got {self.nics_used!r}")


@dataclass(frozen=True, eq=False)
class HopStage:
    """An ordered group of hops whose costs sum into one model term.

    ``repeat`` scales the stage total (the node-aware gather and
    redistribution legs are the same term twice: ``2 T_on``); the
    stage then realizes one tracer lane per entry of ``phases``.
    ``check`` tells :mod:`repro.paths.check` how strictly the DES trace
    must match.

    ``kind`` distinguishes per-exchange TRANSFER stages from one-time
    SETUP stages; a setup stage's summed cost is divided by
    ``amortize_over`` (the persistence window, in exchanges) and is
    exempt from the DES trace check.
    """

    label: str
    hops: Tuple[Hop, ...]
    repeat: float = 1.0
    phases: Tuple[str, ...] = ()
    check: CheckMode = CheckMode.BOUND_RANK
    kind: StageKind = StageKind.TRANSFER
    amortize_over: float = 1.0

    def __post_init__(self) -> None:
        if not self.hops:
            raise ValueError(f"stage {self.label!r} has no hops")
        first = self.hops[0]
        if first.enabled is not True:
            raise ValueError(
                f"stage {self.label!r}: the leading hop must be "
                f"unconditional (conditional hops fold onto a running sum)")
        if not (self.amortize_over >= 1.0):
            raise ValueError(
                f"stage {self.label!r}: amortize_over must be >= 1, "
                f"got {self.amortize_over!r}")
        if self.kind is StageKind.SETUP and self.phases:
            raise ValueError(
                f"stage {self.label!r}: SETUP stages are invisible to the "
                f"message trace and cannot realize tracer lanes")


@dataclass(frozen=True, eq=False)
class HopPlan:
    """The compiled path of one strategy over one pattern summary.

    ``uncosted_phases`` lists tracer lanes the DES implementation may
    legitimately use without the analytic model charging them (e.g. the
    purely local ``"on-node direct"`` deliveries, which the paper's
    busiest-node model treats as free relative to the off-node path).
    """

    strategy: str
    data_path: str
    stages: Tuple[HopStage, ...]
    uncosted_phases: Tuple[str, ...] = ()

    def stage_for_phase(self, phase: str) -> Optional[HopStage]:
        """The stage realizing tracer lane ``phase`` (None if uncosted)."""
        for stage in self.stages:
            if phase in stage.phases:
                return stage
        return None

    @property
    def phases(self) -> Tuple[str, ...]:
        """Every tracer lane the plan's stages realize, in stage order."""
        seen = []
        for stage in self.stages:
            for phase in stage.phases:
                if phase not in seen:
                    seen.append(phase)
        return tuple(seen)
