"""``cudaMemcpyAsync`` microbenchmarks (Table 3 / Figure 3.1).

Copies a total volume between host and one GPU with the copy split over
``NP`` concurrent processes (duplicate device pointers).  The reported
time is the wall clock of the slowest team member — exactly what
Figure 3.1 plots and what Table 3's fits are taken against.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.benchpress.fitting import LinearFit, fit_alpha_beta
from repro.machine.locality import CopyDirection
from repro.mpi.buffers import DeviceBuffer
from repro.mpi.job import SimJob


def memcpy_time(job: SimJob, direction: CopyDirection, total_bytes: int,
                nproc: int = 1, gpu: int = 0, reset: bool = False) -> float:
    """Wall time to move ``total_bytes`` in ``direction`` with ``nproc``
    concurrent copy processes on GPU ``gpu``'s host team.

    ``reset=True`` reuses the job's simulator/transport via
    :meth:`SimJob.reset_state` (sweep fast path, bit-identical results).
    """
    if total_bytes < 0:
        raise ValueError(f"total_bytes must be >= 0, got {total_bytes}")
    if nproc < 1:
        raise ValueError(f"nproc must be >= 1, got {nproc}")
    layout = job.layout
    node = gpu // layout.machine.gpus_per_node
    team = layout.host_team(node, gpu % layout.machine.gpus_per_node, nproc)
    share = int(np.ceil(total_bytes / len(team)))

    def program(ctx):
        if ctx.rank in team:
            if direction is CopyDirection.D2H:
                ev, _ = ctx.copy.d2h(DeviceBuffer(gpu, share),
                                     nproc=len(team), team_bytes=total_bytes)
            else:
                ev, _ = ctx.copy.h2d(share, gpu=gpu, nproc=len(team),
                                     team_bytes=total_bytes)
            yield ev
        return ctx.now

    return job.run(program, reset_state=reset).elapsed


def memcpy_sweep(job: SimJob, direction: CopyDirection,
                 sizes: Sequence[int],
                 nproc_values: Sequence[int]) -> Dict[int, np.ndarray]:
    """Figure 3.1 data for one direction: ``{NP: times over sizes}``."""
    return {
        int(np_): np.array([memcpy_time(job, direction, int(s), nproc=int(np_),
                                        reset=True)
                            for s in sizes])
        for np_ in nproc_values
    }


def fit_copy_table(job: SimJob, sizes: Sequence[int] = ()
                   ) -> Dict[Tuple[CopyDirection, int], LinearFit]:
    """Regenerate Table 3: (alpha, beta) per (direction, NP in {1, 4})."""
    if not sizes:
        sizes = [1 << k for k in range(10, 21, 2)]
    out: Dict[Tuple[CopyDirection, int], LinearFit] = {}
    for direction in CopyDirection:
        for nproc in job.layout.machine.copy_params.measured_counts(direction):
            times = [memcpy_time(job, direction, int(s), nproc=nproc,
                                 reset=True)
                     for s in sizes]
            out[(direction, nproc)] = fit_alpha_beta(sizes, times)
    return out
