"""Microbenchmarks on the simulated machine (BenchPress analog).

The paper collects its model constants with BenchPress — ping-pong and
node-pong timings, 1000 iterations, least-squares fitted.  This package
reruns the same experiment designs against the simulator:

* :mod:`~repro.benchpress.pingpong` — two-process round trips per
  locality and transport kind (Table 2 / Figure 2.5);
* :mod:`~repro.benchpress.nodepong` — node-to-node volume split over
  ppn processes (Figure 2.6) and injection-rate saturation (Table 4);
* :mod:`~repro.benchpress.memcpy` — H2D/D2H copies split over NP
  processes (Table 3 / Figure 3.1);
* :mod:`~repro.benchpress.fitting` — the linear least-squares
  ``(alpha, beta)`` fits.

Because the simulator charges the configured constants, the fits must
recover Tables 2-4 (up to protocol-boundary effects and seeded noise) —
closing the loop between machine description and "measured" values.
"""

from repro.benchpress.fitting import LinearFit, fit_alpha_beta
from repro.benchpress.pingpong import (
    pingpong_sweep,
    pingpong_time,
    fit_comm_table,
    pick_pair,
)
from repro.benchpress.nodepong import nodepong_time, nodepong_sweep, fit_injection_rate
from repro.benchpress.memcpy import memcpy_time, memcpy_sweep, fit_copy_table

__all__ = [
    "LinearFit",
    "fit_alpha_beta",
    "pingpong_sweep",
    "pingpong_time",
    "fit_comm_table",
    "pick_pair",
    "nodepong_time",
    "nodepong_sweep",
    "fit_injection_rate",
    "memcpy_time",
    "memcpy_sweep",
    "fit_copy_table",
]
