"""Ping-pong microbenchmarks (Table 2 / Figure 2.5).

A classic two-process round trip: A sends ``s`` bytes to B, B echoes
them back; the one-way time is half the round trip, averaged over
iterations.  Pairs are picked per locality (same socket / same node /
separate nodes) and per transport kind (CPU host buffers vs GPU device
buffers), mirroring the paper's measurement design.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.benchpress.fitting import LinearFit, fit_alpha_beta
from repro.machine.locality import Locality, Protocol, TransportKind
from repro.machine.topology import MachineSpec
from repro.mpi.buffers import DeviceBuffer
from repro.mpi.job import SimJob

_TAG = 99


def pick_pair(job: SimJob, locality: Locality,
              kind: TransportKind) -> Tuple[int, int]:
    """Two ranks realizing ``locality`` for ``kind`` endpoints.

    GPU endpoints must both be GPU owners; CPU endpoints may be any
    ranks.  Raises when the job shape cannot realize the locality
    (e.g. off-node with one node).
    """
    layout = job.layout
    candidates = (layout.gpu_owner_ranks() if kind is TransportKind.GPU
                  else list(range(layout.size)))
    a = candidates[0]
    for b in candidates[1:]:
        if layout.locality(a, b) is locality:
            return a, b
    raise ValueError(
        f"job {layout!r} cannot realize {locality} for {kind} endpoints"
    )


def pingpong_time(job: SimJob, rank_a: int, rank_b: int, nbytes: int,
                  kind: TransportKind = TransportKind.CPU,
                  iterations: int = 1, reset: bool = False) -> float:
    """Average one-way time for ``nbytes`` between two ranks.

    ``reset=True`` reuses the job's simulator/transport via
    :meth:`SimJob.reset_state` instead of rebuilding them — sweep loops
    use this; results are bit-identical either way.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    layout = job.layout

    def payload_for(rank: int):
        if kind is TransportKind.GPU:
            gpu = layout.global_gpu_of(rank)
            if gpu is None:
                raise ValueError(f"rank {rank} owns no GPU")
            return DeviceBuffer(gpu, nbytes)
        return nbytes

    def program(ctx):
        if ctx.rank == rank_a:
            for _ in range(iterations):
                yield ctx.comm.send(payload_for(rank_a), dest=rank_b, tag=_TAG)
                yield ctx.comm.recv(source=rank_b, tag=_TAG)
        elif ctx.rank == rank_b:
            for _ in range(iterations):
                yield ctx.comm.recv(source=rank_a, tag=_TAG)
                yield ctx.comm.send(payload_for(rank_b), dest=rank_a, tag=_TAG)
        return ctx.now

    result = job.run(program, reset_state=reset)
    return result.elapsed / (2.0 * iterations)


def pingpong_sweep(job: SimJob, locality: Locality, sizes: Sequence[int],
                   kind: TransportKind = TransportKind.CPU,
                   iterations: int = 1) -> np.ndarray:
    """One-way times over a size sweep at fixed locality."""
    a, b = pick_pair(job, locality, kind)
    return np.array([
        pingpong_time(job, a, b, int(s), kind=kind, iterations=iterations,
                      reset=True)
        for s in sizes
    ])


def protocol_sizes(machine: MachineSpec, kind: TransportKind,
                   protocol: Protocol, n_points: int = 8) -> List[int]:
    """A size grid lying strictly inside one protocol's regime."""
    th = machine.comm_params.thresholds
    if kind is TransportKind.GPU:
        if protocol is Protocol.SHORT:
            raise ValueError("GPU transport has no short protocol")
        lo, hi = ((1, th.gpu_eager_limit) if protocol is Protocol.EAGER
                  else (th.gpu_eager_limit + 1, 1 << 20))
    else:
        if protocol is Protocol.SHORT:
            lo, hi = 1, th.short_limit
        elif protocol is Protocol.EAGER:
            lo, hi = th.short_limit + 1, th.eager_limit
        else:
            lo, hi = th.eager_limit + 1, 1 << 20
    grid = np.unique(np.linspace(lo, hi, n_points).astype(np.int64))
    return [int(s) for s in grid]


def fit_comm_table(job: SimJob, iterations: int = 1,
                   n_points: int = 8) -> Dict[Tuple[TransportKind, Protocol,
                                                    Locality], LinearFit]:
    """Regenerate Table 2: fit (alpha, beta) for every measured path."""
    machine = job.layout.machine
    out: Dict[Tuple[TransportKind, Protocol, Locality], LinearFit] = {}
    for kind, protocol, locality in machine.comm_params.required_keys():
        sizes = protocol_sizes(machine, kind, protocol, n_points=n_points)
        times = pingpong_sweep(job, locality, sizes, kind=kind,
                               iterations=iterations)
        out[(kind, protocol, locality)] = fit_alpha_beta(sizes, times)
    return out
