"""Node-pong microbenchmarks (Figure 2.6 / Table 4).

Node-pong sends a total volume ``s`` from node 0 to node 1 split evenly
across ``ppn`` process pairs; the reported time is when the last byte
lands.  Sweeping ``ppn`` reproduces Figure 2.6 (splitting large volumes
over more cores wins); driving the NIC to saturation and fitting the
aggregate slope recovers the injection rate ``R_N`` of Table 4.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.benchpress.fitting import LinearFit, fit_alpha_beta
from repro.mpi.job import SimJob

_TAG = 98


def nodepong_time(job: SimJob, total_bytes: int, ppn_active: int,
                  reset: bool = False) -> float:
    """Time to move ``total_bytes`` node 0 -> node 1 over ``ppn_active`` pairs.

    ``reset=True`` reuses the job's simulator/transport via
    :meth:`SimJob.reset_state` (sweep fast path, bit-identical results).
    """
    if job.layout.num_nodes < 2:
        raise ValueError("node-pong needs at least two nodes")
    if not 1 <= ppn_active <= job.layout.ppn:
        raise ValueError(
            f"ppn_active must be in [1, {job.layout.ppn}], got {ppn_active}"
        )
    if total_bytes < 0:
        raise ValueError(f"total_bytes must be >= 0, got {total_bytes}")
    share = total_bytes // ppn_active
    remainder = total_bytes - share * ppn_active
    ppn = job.layout.ppn

    def program(ctx):
        lr = ctx.local_rank
        if ctx.node == 0 and lr < ppn_active:
            nbytes = share + (remainder if lr == 0 else 0)
            yield ctx.comm.send(nbytes, dest=ppn + lr, tag=_TAG)
        elif ctx.node == 1 and lr < ppn_active:
            yield ctx.comm.recv(source=lr, tag=_TAG)
        return ctx.now

    return job.run(program, reset_state=reset).elapsed


def nodepong_sweep(job: SimJob, sizes: Sequence[int],
                   ppn_values: Sequence[int]) -> Dict[int, np.ndarray]:
    """Figure 2.6 data: ``{ppn: times aligned with sizes}``."""
    return {
        int(p): np.array([nodepong_time(job, int(s), int(p), reset=True)
                          for s in sizes])
        for p in ppn_values
    }


def fit_injection_rate(job: SimJob, sizes: Sequence[int] = (),
                       ppn_active: int = 0) -> LinearFit:
    """Recover ``R_N`` (Table 4): fit time vs total volume at saturation.

    With enough active processes the per-process rate no longer binds
    and the slope of time over total injected bytes is ``R_N^{-1}``.
    The returned fit's ``beta`` is therefore the paper's Table-4 value.
    """
    ppn_active = ppn_active or job.layout.ppn
    if not sizes:
        sizes = [1 << 22, 1 << 23, 1 << 24, 1 << 25]
    times = [nodepong_time(job, int(s), ppn_active, reset=True) for s in sizes]
    return fit_alpha_beta(sizes, times)
