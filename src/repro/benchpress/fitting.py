"""Least-squares parameter fitting (alpha + beta * s).

The paper derives every Table 2/3 entry as "a linear least-squares fit
to the collected data"; :func:`fit_alpha_beta` is that fit, with the
fit quality reported so tests can assert recovery of the configured
constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """Fitted postal parameters with goodness of fit."""

    alpha: float   # intercept [s]
    beta: float    # slope [s/byte]
    r_squared: float
    n_points: int

    def time(self, nbytes: float) -> float:
        return self.alpha + self.beta * nbytes


def fit_alpha_beta(sizes: Sequence[float], times: Sequence[float]) -> LinearFit:
    """Fit ``time = alpha + beta * size`` by ordinary least squares.

    Requires at least two distinct sizes.  A degenerate all-equal-time
    fit yields ``beta = 0`` with ``r_squared = 1``.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    times = np.asarray(times, dtype=np.float64)
    if sizes.shape != times.shape or sizes.ndim != 1:
        raise ValueError("sizes and times must be 1-D arrays of equal length")
    if len(sizes) < 2:
        raise ValueError("need at least two points to fit")
    if np.ptp(sizes) == 0:
        raise ValueError("need at least two distinct sizes")
    beta, alpha = np.polyfit(sizes, times, deg=1)
    predicted = alpha + beta * sizes
    ss_res = float(np.sum((times - predicted) ** 2))
    ss_tot = float(np.sum((times - times.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(alpha=float(alpha), beta=float(beta),
                     r_squared=r2, n_points=len(sizes))
