"""repro — node-aware communication strategies on heterogeneous architectures.

A reproduction of Lockhart, Bienz, Gropp & Olson, *Characterizing the
Performance of Node-Aware Strategies for Irregular Point-to-Point
Communication on Heterogeneous Architectures*, as a self-contained
Python library: a discrete-event-simulated machine + MPI stack carrying
the paper's measured Lassen constants, the full set of communication
strategies (Standard / 3-Step / 2-Step / Split+MD / Split+DD, staged and
device-aware), the Table-6 analytic models, and a distributed-SpMV
workload substrate.

Typical entry points:

>>> from repro import lassen, SimJob, CommPattern, SplitMD, run_exchange
>>> job = SimJob(lassen(), num_nodes=2, ppn=8)
>>> import numpy as np
>>> pattern = CommPattern(8, {0: {4: np.arange(32)}})
>>> result = run_exchange(job, SplitMD(), pattern)
>>> result.comm_time > 0
True

Subpackages
-----------
``repro.sim``         discrete-event simulation kernel
``repro.machine``     topologies + measured constants (Tables 2-4)
``repro.mpi``         simulated MPI runtime
``repro.models``      postal/max-rate models, Table-6 strategy models
``repro.core``        the communication strategies (the contribution)
``repro.sparse``      distributed SpMV substrate + matrix analogs
``repro.benchpress``  microbenchmarks (parameter recovery)
``repro.bench``       per-table/figure experiment harness
"""

from repro.machine import lassen, summit, frontier_like, delta_like
from repro.mpi import DeviceBuffer, SimJob
from repro.core import (
    CommPattern,
    NodeAwareExchanger,
    SplitDD,
    SplitMD,
    StandardDevice,
    StandardStaged,
    ThreeStepDevice,
    ThreeStepStaged,
    TwoStepDevice,
    TwoStepStaged,
    all_strategies,
    compare_strategies,
    run_exchange,
    select_strategy,
    verify_exchange,
)
from repro.sparse import DistributedCSR, build_suite_matrix, distributed_spmv

__version__ = "1.0.0"

__all__ = [
    "lassen",
    "summit",
    "frontier_like",
    "delta_like",
    "DeviceBuffer",
    "SimJob",
    "CommPattern",
    "NodeAwareExchanger",
    "SplitDD",
    "SplitMD",
    "StandardDevice",
    "StandardStaged",
    "ThreeStepDevice",
    "ThreeStepStaged",
    "TwoStepDevice",
    "TwoStepStaged",
    "all_strategies",
    "compare_strategies",
    "run_exchange",
    "select_strategy",
    "verify_exchange",
    "DistributedCSR",
    "build_suite_matrix",
    "distributed_spmv",
    "__version__",
]
