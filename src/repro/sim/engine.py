"""The simulation engine: virtual clock, event heap, process scheduling.

Determinism
-----------
Events scheduled for the same virtual time fire in scheduling order
(monotone sequence numbers break ties), so a simulation with a fixed seed
is bit-reproducible across runs and platforms.

Fast paths
----------
The engine keeps three pending-event structures that together behave as
a single priority queue ordered by ``(time, seq)``:

* a binary heap for events scheduled individually with a positive delay,
* a plain FIFO deque for *immediate* (zero-delay) events, and
* a struct-of-arrays sorted run (:class:`~repro.sim.soa.SoATimeline`)
  for *batch*-scheduled events: numpy time/seq arrays merged with one
  ``lexsort`` per batch instead of one ``heappush`` per event.

Zero-delay events — process starts, resumptions of already-fired events,
interrupts, and every ``succeed()``/``fail()`` without a delay — are the
majority of the event traffic in message-heavy simulations.  Because the
clock never moves backwards, the deque is naturally sorted by
``(time, seq)``, so the engine only has to compare the queue heads to
pop in exactly the order the single-heap implementation would have.  The
fired order (and therefore every virtual time) is bit-identical to the
pure-heap kernel; only the wall-clock cost changes.

The untraced ``run()`` loop additionally *coalesces* work instead of
dispatching one ``step()`` per event: a zero-delay cascade drains the
deque in one inner loop under a cached barrier (the earliest heap/SoA
head — safe because batch APIs only admit strictly-future times, so no
new entry scheduled during the drain can preempt it), and a run of
SoA entries drains with a vectorized ``searchsorted`` bound plus an
O(1) pointer to the next real Event payload.  Anonymous ticks (``None``
payloads) advance the clock without touching a single Python object.

Process resumption on an already-fired event similarly skips the relay
:class:`Event` allocation: a lightweight :class:`_Resume` token carrying
the original event is queued instead, preserving engine-driven (non-
recursive) resumption order.
"""

from __future__ import annotations

import heapq
import time as _time
from collections import deque
from itertools import count
from typing import Any, Generator, Iterable, List, Optional, Sequence, Tuple

import numpy as np


class SimulationError(RuntimeError):
    """Raised for structural errors in a simulation."""


# The exception hierarchy is defined *before* any intra-package imports:
# repro.faults.errors subclasses SimulationError and is reachable from
# repro.obs via the supervised sweep executor, so it may re-enter this
# module while the imports below are still resolving.
from repro.obs.tracer import NULL_TRACER
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    EventState,
    Timeout,
    ensure_event,
)
from repro.sim.soa import SoATimeline, TickBatch

_PROCESSED = EventState.PROCESSED
_TRIGGERED = EventState.TRIGGERED

#: traced-run queue-depth sampling period (steps per counter sample)
_TRACE_SAMPLE_EVERY = 256


class DeadlockError(SimulationError):
    """Raised when processes remain but no events are scheduled."""


class WatchdogError(SimulationError):
    """Raised when a run exceeds its max-events / max-wall-seconds budget."""


#: wall-clock watchdog check period (steps between ``monotonic()`` reads)
_WATCHDOG_CHECK_EVERY = 4096


class Interrupt(Exception):
    """Raised inside a process that has been interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class _Start:
    """Zero-delay token kick-starting a process (no Event allocation).

    Duck-types the slice of the :class:`Event` interface that
    :meth:`Process._resume` reads (``ok`` / ``value``).
    """

    __slots__ = ("process",)
    ok = _ok = True
    value = _value = None

    def __init__(self, process: "Process") -> None:
        self.process = process

    def _process_callbacks(self) -> None:
        self.process._resume(self)


class _Resume:
    """Zero-delay token resuming a process from an already-fired event.

    Replaces the relay :class:`Event` the slow path allocated: the
    process is resumed with the *original* event (same ``ok``/``value``),
    still driven by the engine loop rather than recursion.
    """

    __slots__ = ("process", "source")

    def __init__(self, process: "Process", source: Event) -> None:
        self.process = process
        self.source = source

    def _process_callbacks(self) -> None:
        self.process._resume(self.source)


class _Throw:
    """Zero-delay token throwing an exception into a process."""

    __slots__ = ("process", "exc")

    def __init__(self, process: "Process", exc: BaseException) -> None:
        self.process = process
        self.exc = exc

    def _process_callbacks(self) -> None:
        self.process._throw(self.exc)


class Process(Event):
    """A running generator coroutine.

    A :class:`Process` is itself an :class:`Event` that fires when the
    generator returns; its value is the generator's return value.  This
    lets processes wait on each other by yielding the process object.
    """

    __slots__ = ("generator", "_waiting_on", "label", "_bound_resume",
                 "_trace_t0")

    def __init__(self, sim: "Simulator", generator: Generator,
                 label: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(sim, name=label or getattr(generator, "__name__", "process"))
        self.generator = generator
        self.label = self.name
        self._waiting_on: Optional[Event] = None
        # One bound method reused for every callback subscription (a
        # fresh `self._resume` lookup allocates a new method object).
        self._bound_resume = self._resume
        # Kick-start at the current time via an immediate token.
        sim._schedule_token(_Start(self))
        sim._live_processes += 1
        sim._processes.append(self)
        if sim._trace_on:
            self._trace_t0 = sim._now
            sim.tracer.instant(self.label, "start", sim._now, cat="engine")

    @property
    def is_alive(self) -> bool:
        return not self.processed

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt finished process {self.label!r}")
        self.sim._schedule_token(_Throw(self, Interrupt(cause)))

    # -- engine internals ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._state is _PROCESSED:
            return
        if self.sim._trace_fine:
            self.sim.tracer.instant(self.label, "resume", self.sim._now,
                                    cat="engine")
        self._waiting_on = None
        try:
            if event._ok:
                target = self.generator.send(event._value)
            else:
                target = self.generator.throw(event._value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:
            self.sim._live_processes -= 1
            self._state = EventState.PENDING  # allow fail()
            self.fail(exc)
            self.sim._crashed.append((self, exc))
            return
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        if self._state is _PROCESSED:
            return
        waiting = self._waiting_on
        if waiting is not None and self._bound_resume in waiting.callbacks:
            waiting.callbacks.remove(self._bound_resume)
        self._waiting_on = None
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as err:
            self.sim._live_processes -= 1
            self._state = EventState.PENDING
            self.fail(err)
            self.sim._crashed.append((self, err))
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        event = target if isinstance(target, Event) else ensure_event(self.sim, target)
        self._waiting_on = event
        if event._state is _PROCESSED:
            # Already fired: resume at the current time via an immediate
            # token so the engine (not recursion) drives the resumption.
            self.sim._schedule_token(_Resume(self, event))
        else:
            event.callbacks.append(self._bound_resume)

    def _finish(self, value: Any) -> None:
        sim = self.sim
        sim._live_processes -= 1
        if sim._trace_on:
            sim.tracer.span(self.label, "process", self._trace_t0, sim._now,
                            cat="engine")
        self.succeed(value)


class Simulator:
    """Owner of the virtual clock and the pending-event queues.

    ``tracer`` (default: the shared :data:`~repro.obs.tracer.NULL_TRACER`)
    receives engine spans when enabled: process start instants and
    lifetime spans, plus queue-depth counter samples from the traced run
    loop.  The disabled path costs one cached-boolean branch per site —
    the untraced ``run()`` loop is untouched.
    """

    def __init__(self, tracer: Any = None) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        #: zero-delay events/tokens, naturally sorted by (time, seq)
        self._imm: deque = deque()
        #: batch-scheduled events, sorted column-wise by (time, seq)
        self._soa = SoATimeline()
        #: cached ``(time, seq)`` of the earliest SoA entry (None = empty);
        #: refreshed on every merge/fire so hot loops never touch numpy
        #: scalars just to compare heads
        self._soa_head: Optional[Tuple[float, int]] = None
        self._seq = count()
        self._live_processes = 0
        #: every process ever registered (labels for deadlock/watchdog
        #: diagnostics); cleared by :meth:`reset`
        self._processes: List[Process] = []
        self._crashed: List[Tuple[Process, BaseException]] = []
        self._steps_traced = 0
        self.set_tracer(tracer if tracer is not None else NULL_TRACER)

    def set_tracer(self, tracer: Any) -> None:
        """Install ``tracer`` and refresh the cached hot-path flags."""
        self.tracer = tracer
        self._trace_on = bool(tracer.enabled)
        self._trace_fine = self._trace_on and bool(getattr(tracer, "fine",
                                                           False))

    # -- clock ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def steps_traced(self) -> int:
        """Events fired by traced ``run()`` loops (0 when untraced)."""
        return self._steps_traced

    # -- scheduling -------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay == 0.0:
            # Immediate: fires at the current time, after everything at
            # (now, smaller seq) — exactly heap order, without the heap.
            self._imm.append((self._now, next(self._seq), event))
        elif delay > 0.0:
            heapq.heappush(self._heap, (self._now + delay, next(self._seq), event))
        else:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")

    def _schedule_token(self, token: Any) -> None:
        """Queue an engine-internal immediate token (start/resume/throw)."""
        self._imm.append((self._now, next(self._seq), token))

    def _claim_seq_block(self, n: int) -> np.ndarray:
        """Reserve ``n`` consecutive sequence numbers as an int64 array."""
        base = next(self._seq)
        self._seq = count(base + n)
        return np.arange(base, base + n, dtype=np.int64)

    @staticmethod
    def _check_batch_delays(delays: Any) -> np.ndarray:
        delays = np.asarray(delays, dtype=np.float64)
        if delays.ndim != 1:
            raise ValueError(
                f"batch delays must be one-dimensional, got shape "
                f"{delays.shape}")
        if delays.size and not np.all(delays > 0.0):
            # Zero-delay bulk events would belong on the immediate deque
            # (and would invalidate the drain-loop barrier); schedule
            # them individually instead.
            raise ValueError(
                "batch delays must be strictly positive (zero-delay "
                "events go through the immediate queue)")
        return delays

    def schedule_ticks(self, delays: Any, complete: bool = False) -> TickBatch:
        """Schedule a batch of *anonymous ticks* ``delays`` seconds from now.

        Each tick advances the virtual clock in global ``(time, seq)``
        order but allocates no per-event Python object — the batch is
        three numpy arrays plus one :class:`TickBatch` handle.  With
        ``complete=True`` the handle's ``completed`` event fires when
        the last tick of the batch does.  Delays must be strictly
        positive (a zero-delay "tick" is just an immediate event).
        """
        delays = self._check_batch_delays(delays)
        n = int(delays.size)
        batch = TickBatch(self, n, complete)
        if n == 0:
            if complete:
                batch.completed.succeed(batch)
            return batch
        times = self._now + delays
        seqs = self._claim_seq_block(n)
        events: List[Any] = [None] * n
        if complete:
            # The completion marker rides on the entry that fires last.
            last = int(np.lexsort((seqs, times))[-1])
            events[last] = batch
        self._soa.merge(times, seqs, events)
        self._soa_head = self._soa.head()
        return batch

    def timeout_batch(self, delays: Any,
                      values: Optional[Sequence[Any]] = None) -> List[Timeout]:
        """Create ``len(delays)`` timeouts with one batched scheduling pass.

        Returns the :class:`Timeout` events in input order; each behaves
        exactly like ``sim.timeout(delay, value)`` (waitable, callbacks,
        same ``(time, seq)`` firing order) but the heap push per event is
        replaced by a single SoA merge.  Delays must be strictly
        positive.
        """
        delays = self._check_batch_delays(delays)
        n = int(delays.size)
        if values is not None and len(values) != n:
            raise ValueError(
                f"values length {len(values)} != delays length {n}")
        if n == 0:
            return []
        times = self._now + delays
        seqs = self._claim_seq_block(n)
        timeouts: List[Timeout] = []
        append = timeouts.append
        vals = values if values is not None else (None,) * n
        for delay, value in zip(delays.tolist(), vals):
            # Mirror of Timeout.__init__ minus the per-event _schedule.
            t = Timeout.__new__(Timeout)
            t.sim = self
            t.name = ""
            t.callbacks = []
            t.delay = delay
            t._value = value
            t._ok = True
            t._state = _TRIGGERED
            append(t)
        self._soa.merge(times, seqs, list(timeouts))
        self._soa_head = self._soa.head()
        return timeouts

    # -- factories ---------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value=value)

    def timeout_until(self, when: float, value: Any = None) -> Timeout:
        """An event firing at absolute virtual time ``when`` (>= now)."""
        if when < self._now - 1e-18:
            raise ValueError(
                f"timeout_until({when!r}) is in the past (now={self._now!r})"
            )
        return Timeout(self, max(0.0, when - self._now), value=value)

    def process(self, generator: Generator, label: str = "") -> Process:
        """Register ``generator`` as a process starting at the current time."""
        return Process(self, generator, label=label)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, list(events))

    # -- main loop -----------------------------------------------------------------
    def step(self) -> None:
        """Fire the next scheduled event.

        Raises :class:`SimulationError` when nothing is scheduled (an
        empty schedule is a caller bug, not an engine state).
        """
        imm = self._imm
        heap = self._heap
        if self._soa_head is not None:
            self._step_three_way()
            return
        if imm:
            # The deque is sorted by (time, seq); pop whichever head is
            # earlier so the fired order matches the single-heap kernel.
            # Sequence numbers are unique, so the tuple comparison never
            # reaches the (incomparable) event payloads.
            if heap and heap[0] < imm[0]:
                when, _seq, event = heapq.heappop(heap)
            else:
                when, _seq, event = imm.popleft()
        elif heap:
            when, _seq, event = heapq.heappop(heap)
        else:
            raise SimulationError("step() called with no scheduled events")
        self._now = when
        event._process_callbacks()

    def _step_three_way(self) -> None:
        """``step()`` with a non-empty SoA run: compare all three heads."""
        imm = self._imm
        heap = self._heap
        soa_key = self._soa_head
        best: Optional[Tuple[float, int]] = None
        if imm:
            head = imm[0]
            best = (head[0], head[1])
        if heap:
            hk = (heap[0][0], heap[0][1])
            if best is None or hk < best:
                best = hk
        if best is None or soa_key < best:
            self._fire_soa_one()
            return
        if imm and best == (imm[0][0], imm[0][1]):
            when, _seq, event = imm.popleft()
        else:
            when, _seq, event = heapq.heappop(heap)
        self._now = when
        event._process_callbacks()

    def _fire_soa_one(self) -> None:
        """Fire exactly the earliest SoA entry (single-step granularity)."""
        soa = self._soa
        i = soa.pos
        event = soa.events[i]
        self._now = float(soa.times[i])
        soa.pos = i + 1
        soa.fired += 1
        if event is not None:
            soa.ev_ptr += 1
        self._soa_head = soa.head()
        if event is None:
            return
        if type(event) is TickBatch:
            event._complete_now()
        else:
            event._process_callbacks()

    # -- diagnostics -----------------------------------------------------------
    def blocked_labels(self, limit: Optional[int] = None) -> List[str]:
        """Labels of processes that are still alive (blocked or runnable)."""
        labels = [p.label for p in self._processes if p.is_alive]
        return labels if limit is None else labels[:limit]

    def _blocked_detail(self) -> str:
        labels = self.blocked_labels()
        if not labels:
            return ""
        shown = ", ".join(labels[:8])
        if len(labels) > 8:
            shown += f", ... ({len(labels) - 8} more)"
        return f" (blocked: {shown})"

    def _raise_crashed(self, proc: Process, exc: BaseException) -> None:
        # Structural simulation errors (DeliveryError, watchdog trips seen
        # inside a program, ...) surface unwrapped so callers can catch
        # the specific type; anything else keeps the crash wrapper.
        if isinstance(exc, SimulationError):
            raise exc
        raise SimulationError(
            f"process {proc.label!r} crashed at t={self._now:g}: {exc!r}"
        ) from exc

    def _raise_deadlock(self) -> None:
        raise DeadlockError(
            f"{self._live_processes} process(es) blocked forever at "
            f"t={self._now:g} with no scheduled events{self._blocked_detail()}"
        )

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None,
            max_wall_seconds: Optional[float] = None) -> float:
        """Run until the queues drain or virtual time passes ``until``.

        Returns the final virtual time.  Raises :class:`DeadlockError` if
        live processes remain with nothing scheduled, and re-raises the
        first exception of any crashed process (:class:`SimulationError`
        subclasses propagate unwrapped; other exceptions are wrapped with
        the crashing process's label).

        ``max_events`` / ``max_wall_seconds`` arm a watchdog: exceeding
        either budget raises a diagnostic :class:`WatchdogError` naming
        the still-live processes — turning runaway or silently-wrong
        simulations into actionable failures.  The watchdog runs in a
        separate guarded loop so the ordinary hot loop stays untouched.
        """
        if max_events is not None or max_wall_seconds is not None:
            return self._run_guarded(until, max_events, max_wall_seconds)
        if self._trace_on:
            return self._run_traced(until)
        imm = self._imm
        heap = self._heap
        crashed = self._crashed
        heappop = heapq.heappop
        while imm or heap or self._soa_head is not None:
            if until is not None and self.peek() > until:
                self._now = until
                break
            soa_key = self._soa_head
            if imm:
                head = imm[0]
                heap_head = heap[0] if heap else None
                if ((heap_head is None or head < heap_head)
                        and (soa_key is None or head[0] < soa_key[0]
                             or (head[0] == soa_key[0]
                                 and head[1] < soa_key[1]))):
                    # Batched zero-delay drain.  The barrier (earliest
                    # heap/SoA key) is computed once for the cascade:
                    # anything scheduled *during* the drain lands either
                    # on this deque (at now, correctly ordered) or in
                    # the strict future (positive delays only), so no
                    # new entry can ever beat the cached barrier.
                    if heap_head is not None and (
                            soa_key is None
                            or (heap_head[0], heap_head[1]) < soa_key):
                        bar_t, bar_s = heap_head[0], heap_head[1]
                    elif soa_key is not None:
                        bar_t, bar_s = soa_key
                    else:
                        bar_t = None
                    if bar_t is None:
                        while imm:
                            when, _seq, event = imm.popleft()
                            self._now = when
                            event._process_callbacks()
                            if crashed:
                                self._raise_crashed(*crashed[0])
                    else:
                        while imm:
                            head = imm[0]
                            if (head[0] > bar_t
                                    or (head[0] == bar_t and head[1] > bar_s)):
                                break
                            imm.popleft()
                            self._now = head[0]
                            head[2]._process_callbacks()
                            if crashed:
                                self._raise_crashed(*crashed[0])
                    continue
            # Earliest pending entry sits on the heap or the SoA run.
            if heap and (soa_key is None
                         or (heap[0][0], heap[0][1]) < soa_key):
                when, _seq, event = heappop(heap)
                self._now = when
                event._process_callbacks()
            else:
                self._drain_soa(until)
            if crashed:
                self._raise_crashed(*crashed[0])
        else:
            if self._live_processes > 0 and until is None:
                self._raise_deadlock()
        return self._now

    def _drain_soa(self, until: Optional[float]) -> None:
        """Fire a run of SoA entries without per-event dispatch.

        Precondition (guaranteed by the ``run()`` loop): the earliest
        SoA entry is the globally earliest pending event and, when
        ``until`` is set, fires at or before it — so at least one entry
        is always in range.  The drain stops at the earliest immediate/
        heap key (``searchsorted`` on the time column), at ``until``, or
        at the first payload that runs user code (a real :class:`Event`
        with callbacks, or a :class:`TickBatch` completion) — returning
        to the main loop keeps the array snapshot below valid, since
        anonymous ticks and callback-free events never schedule.
        """
        soa = self._soa
        times = soa.times
        events = soa.events
        n = times.size
        limit = n
        imm = self._imm
        heap = self._heap
        bar: Optional[Tuple[float, int]] = None
        if imm:
            head = imm[0]
            bar = (head[0], head[1])
        if heap:
            hh = heap[0]
            if bar is None or (hh[0], hh[1]) < bar:
                bar = (hh[0], hh[1])
        if bar is not None:
            bar_t, bar_s = bar
            lo = int(np.searchsorted(times, bar_t, side="left"))
            hi = int(np.searchsorted(times, bar_t, side="right"))
            if hi > lo:
                # Split the time tie on seq (the run is (time, seq)-sorted).
                lo += int(np.searchsorted(soa.seqs[lo:hi], bar_s))
            if lo < limit:
                limit = lo
        if until is not None:
            in_range = int(np.searchsorted(times, until, side="right"))
            if in_range < limit:
                limit = in_range
        ev_positions = soa.ev_positions
        ev_ptr = soa.ev_ptr
        n_ev = ev_positions.size
        fired = soa.fired
        i = soa.pos
        while i < limit:
            nxt = int(ev_positions[ev_ptr]) if ev_ptr < n_ev else n
            if nxt >= limit:
                # Pure anonymous-tick span to the limit: count each tick
                # and land the clock on the last one.
                fired += limit - i
                self._now = float(times[limit - 1])
                i = limit
                break
            if nxt > i:
                fired += nxt - i
                i = nxt
            event = events[i]
            self._now = float(times[i])
            i += 1
            ev_ptr += 1
            fired += 1
            if type(event) is TickBatch:
                soa.pos = i
                soa.ev_ptr = ev_ptr
                soa.fired = fired
                self._soa_head = soa.head()
                event._complete_now()
                return
            if event.callbacks:
                soa.pos = i
                soa.ev_ptr = ev_ptr
                soa.fired = fired
                self._soa_head = soa.head()
                event._process_callbacks()
                return
            # Callback-free Event: firing is just the state flip
            # Event._process_callbacks would have performed.
            event._state = _PROCESSED
        soa.pos = i
        soa.ev_ptr = ev_ptr
        soa.fired = fired
        self._soa_head = soa.head()

    def _run_traced(self, until: Optional[float]) -> float:
        """Instrumented twin of the ``run()`` loop.

        Fires the exact same event sequence (it delegates to ``step()``),
        additionally counting events and sampling the pending-queue depth
        every ``_TRACE_SAMPLE_EVERY`` steps as an ``engine`` counter
        track.  Kept separate so the untraced loop stays branch-free.
        """
        step = self.step
        crashed = self._crashed
        tracer = self.tracer
        steps = 0
        while self._imm or self._heap or self._soa_head is not None:
            if until is not None and self.peek() > until:
                self._now = until
                break
            step()
            steps += 1
            if steps % _TRACE_SAMPLE_EVERY == 0:
                tracer.counter("engine", "queue_depth", self._now,
                               len(self._imm) + len(self._heap)
                               + len(self._soa))
            if crashed:
                self._steps_traced += steps
                self._raise_crashed(*crashed[0])
        else:
            if self._live_processes > 0 and until is None:
                self._steps_traced += steps
                self._raise_deadlock()
        self._steps_traced += steps
        tracer.counter("engine", "queue_depth", self._now,
                       len(self._imm) + len(self._heap) + len(self._soa))
        return self._now

    def _run_guarded(self, until: Optional[float],
                     max_events: Optional[int],
                     max_wall_seconds: Optional[float]) -> float:
        """Watchdog twin of the ``run()`` loop (event + wall budgets).

        Wall time is sampled every ``_WATCHDOG_CHECK_EVERY`` steps to
        keep the per-event cost at one integer compare.  Handles tracing
        too, so a guarded run fires the identical event sequence.
        """
        step = self.step
        crashed = self._crashed
        trace_on = self._trace_on
        tracer = self.tracer
        budget = float("inf") if max_events is None else int(max_events)
        deadline = (None if max_wall_seconds is None
                    else _time.monotonic() + max_wall_seconds)
        steps = 0
        try:
            while self._imm or self._heap or self._soa_head is not None:
                if until is not None and self.peek() > until:
                    self._now = until
                    break
                step()
                steps += 1
                if steps > budget:
                    raise WatchdogError(
                        f"simulation exceeded max_events={max_events} at "
                        f"t={self._now:g} with {self._live_processes} live "
                        f"process(es){self._blocked_detail()}"
                    )
                if (deadline is not None
                        and steps % _WATCHDOG_CHECK_EVERY == 0
                        and _time.monotonic() > deadline):
                    raise WatchdogError(
                        f"simulation exceeded max_wall_seconds="
                        f"{max_wall_seconds} after {steps} events at "
                        f"t={self._now:g} with {self._live_processes} live "
                        f"process(es){self._blocked_detail()}"
                    )
                if trace_on and steps % _TRACE_SAMPLE_EVERY == 0:
                    tracer.counter("engine", "queue_depth", self._now,
                                   len(self._imm) + len(self._heap)
                                   + len(self._soa))
                if crashed:
                    self._raise_crashed(*crashed[0])
            else:
                if self._live_processes > 0 and until is None:
                    self._raise_deadlock()
        finally:
            if trace_on:
                self._steps_traced += steps
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if none)."""
        t = float("inf")
        if self._imm:
            t = self._imm[0][0]
        if self._heap and self._heap[0][0] < t:
            t = self._heap[0][0]
        soa_head = self._soa_head
        if soa_head is not None and soa_head[0] < t:
            t = soa_head[0]
        return t

    @property
    def batched_pending(self) -> int:
        """Batch-scheduled (SoA) events still pending."""
        return len(self._soa)

    @property
    def batched_fired(self) -> int:
        """Batch-scheduled (SoA) events fired since construction/reset."""
        return self._soa.fired

    def reset(self) -> None:
        """Restore a pristine clock/queues in place (between benchmark reps).

        Equivalent to constructing a fresh :class:`Simulator` while
        keeping the object identity, so transports, communicators and
        resources holding a reference stay valid.
        """
        self._now = 0.0
        self._heap.clear()
        self._imm.clear()
        self._soa.clear()
        self._soa_head = None
        self._seq = count()
        self._live_processes = 0
        self._processes.clear()
        self._crashed.clear()
        self._steps_traced = 0
