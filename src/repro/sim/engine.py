"""The simulation engine: virtual clock, event heap, process scheduling.

Determinism
-----------
Events scheduled for the same virtual time fire in scheduling order
(monotone sequence numbers break ties), so a simulation with a fixed seed
is bit-reproducible across runs and platforms.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Iterable, List, Optional, Tuple

from repro.sim.events import AllOf, AnyOf, Event, EventState, Timeout, ensure_event


class SimulationError(RuntimeError):
    """Raised for structural errors in a simulation."""


class DeadlockError(SimulationError):
    """Raised when processes remain but no events are scheduled."""


class Interrupt(Exception):
    """Raised inside a process that has been interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator coroutine.

    A :class:`Process` is itself an :class:`Event` that fires when the
    generator returns; its value is the generator's return value.  This
    lets processes wait on each other by yielding the process object.
    """

    __slots__ = ("generator", "_waiting_on", "label")

    def __init__(self, sim: "Simulator", generator: Generator,
                 label: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(sim, name=label or getattr(generator, "__name__", "process"))
        self.generator = generator
        self.label = self.name
        self._waiting_on: Optional[Event] = None
        # Kick-start at the current time via an immediate event.
        start = Event(sim, name=f"start:{self.name}")
        start.callbacks.append(self._resume)
        start.succeed(None)
        sim._live_processes += 1

    @property
    def is_alive(self) -> bool:
        return not self.processed

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt finished process {self.label!r}")
        ev = Event(self.sim, name=f"interrupt:{self.label}")
        ev.callbacks.append(lambda _ev: self._throw(Interrupt(cause)))
        ev.succeed(None)

    # -- engine internals ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self.processed:
            return
        self._waiting_on = None
        try:
            if event.ok:
                target = self.generator.send(event.value)
            else:
                target = self.generator.throw(event.value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:
            self.sim._live_processes -= 1
            self._state = EventState.PENDING  # allow fail()
            self.fail(exc)
            self.sim._crashed.append((self, exc))
            return
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        if self.processed:
            return
        waiting = self._waiting_on
        if waiting is not None and self._resume in waiting.callbacks:
            waiting.callbacks.remove(self._resume)
        self._waiting_on = None
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as err:
            self.sim._live_processes -= 1
            self._state = EventState.PENDING
            self.fail(err)
            self.sim._crashed.append((self, err))
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        event = ensure_event(self.sim, target)
        self._waiting_on = event
        if event.processed:
            # Already fired: resume at the current time via a fresh event
            # so the engine (not recursion) drives the resumption.
            relay = Event(self.sim, name=f"relay:{self.name}")
            relay.callbacks.append(self._resume)
            if event.ok:
                relay.succeed(event.value)
            else:
                relay.fail(event.value)
        else:
            event.callbacks.append(self._resume)

    def _finish(self, value: Any) -> None:
        self.sim._live_processes -= 1
        self.succeed(value)


class Simulator:
    """Owner of the virtual clock and the pending-event heap."""

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = count()
        self._live_processes = 0
        self._crashed: List[Tuple[Process, BaseException]] = []

    # -- clock ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- scheduling -------------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), event))

    # -- factories ---------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value=value)

    def timeout_until(self, when: float, value: Any = None) -> Timeout:
        """An event firing at absolute virtual time ``when`` (>= now)."""
        if when < self._now - 1e-18:
            raise ValueError(
                f"timeout_until({when!r}) is in the past (now={self._now!r})"
            )
        return Timeout(self, max(0.0, when - self._now), value=value)

    def process(self, generator: Generator, label: str = "") -> Process:
        """Register ``generator`` as a process starting at the current time."""
        return Process(self, generator, label=label)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, list(events))

    # -- main loop -----------------------------------------------------------------
    def step(self) -> None:
        """Fire the next scheduled event."""
        when, _seq, event = heapq.heappop(self._heap)
        self._now = when
        event._process_callbacks()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or virtual time passes ``until``.

        Returns the final virtual time.  Raises :class:`DeadlockError` if
        live processes remain with nothing scheduled, and re-raises the
        first exception of any crashed process.
        """
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self._now = until
                break
            self.step()
            if self._crashed:
                proc, exc = self._crashed[0]
                raise SimulationError(
                    f"process {proc.label!r} crashed at t={self._now:g}: {exc!r}"
                ) from exc
        else:
            if self._live_processes > 0 and until is None:
                raise DeadlockError(
                    f"{self._live_processes} process(es) blocked forever at "
                    f"t={self._now:g} with no scheduled events"
                )
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if none)."""
        return self._heap[0][0] if self._heap else float("inf")
