"""Shared-resource models for the DES kernel.

Three resource kinds are provided:

:class:`Resource`
    A counting semaphore with FIFO queuing — used for exclusive access to
    e.g. a GPU copy engine.
:class:`BandwidthResource`
    A FIFO *byte server*: transfers of ``n`` bytes occupy the server for
    ``n / rate`` seconds, back to back.  Used for the per-node NIC, so
    that concurrent off-node senders share injection bandwidth and the
    aggregate drains at exactly ``rate`` bytes/second — the phenomenon
    the max-rate model (paper eq. 2.2) captures analytically.
:class:`TokenBucket`
    A rate limiter admitting ``rate`` tokens/second with a burst bucket,
    used by tests to model paced injection.

Observability: when the owning simulator has an enabled tracer
(:mod:`repro.obs`), every :class:`BandwidthResource` booking emits one
occupancy span on the server's track (``nic[k]``), and a *named*
:class:`Resource` emits ``in_use`` counter samples on every grant and
release — the acquire→release occupancy series.  With the default
``NullTracer`` both sites cost a single cached-boolean branch.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class Resource:
    """Counting semaphore with FIFO waiters.

    ``acquire()`` returns an event that fires when a slot is granted;
    the holder must call ``release()`` exactly once per grant.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1,
                 name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    def _trace_occupancy(self) -> None:
        self.sim.tracer.counter(self.name, "in_use", self.sim.now,
                                self._in_use)
        if self._waiters:
            self.sim.tracer.counter(self.name, "waiters", self.sim.now,
                                    len(self._waiters))

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def acquire(self) -> Event:
        ev = self.sim.event(name="Resource.acquire")
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        if self.sim._trace_on and self.name:
            self._trace_occupancy()
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError("release() without matching acquire()")
        if self._waiters:
            # Hand the slot directly to the next waiter.
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1
        if self.sim._trace_on and self.name:
            self._trace_occupancy()


class BandwidthResource:
    """A FIFO byte server of fixed ``rate`` bytes/second.

    ``transfer(nbytes)`` reserves the server for ``nbytes / rate`` seconds
    starting when the server frees up, and returns the event firing at the
    transfer's completion time.  Zero-byte transfers complete at the
    current front of the queue without consuming server time.

    The server conserves throughput: the sum of bytes completed over any
    busy interval equals ``rate * interval``, which is what makes
    max-rate injection behaviour emerge from contention.

    Fault injection (:mod:`repro.faults`) may install *degradation
    windows* via :meth:`set_degradation`: during ``[t0, t1)`` the server
    drains at ``factor * rate``.  With no windows installed the original
    single-division fast path is taken unchanged.
    """

    def __init__(self, sim: "Simulator", rate: float, name: str = "") -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        self.sim = sim
        self.rate = float(rate)
        self.name = name
        self._available_at: float = 0.0
        self._bytes_served: float = 0.0
        self._transfers: int = 0
        #: sorted, non-overlapping ``(t0, t1, factor)`` rate droops
        self._windows: Optional[Tuple[Tuple[float, float, float], ...]] = None

    def set_degradation(
            self,
            windows: Optional[Sequence[Tuple[float, float, float]]]) -> None:
        """Install (or clear, with ``None``) rate-degradation windows.

        ``windows`` are ``(t0, t1, factor)`` triples with
        ``0 < factor <= 1``; they must be sorted by start and must not
        overlap (the piecewise drain walks them once per transfer).
        """
        if not windows:
            self._windows = None
            return
        wins = tuple((float(t0), float(t1), float(f))
                     for t0, t1, f in windows)
        prev_end = -float("inf")
        for t0, t1, f in wins:
            if not t1 > t0:
                raise ValueError(f"empty degradation window [{t0!r}, {t1!r})")
            if not 0.0 < f <= 1.0:
                raise ValueError(
                    f"degradation factor must be in (0, 1], got {f!r}")
            if t0 < prev_end:
                raise ValueError(
                    f"degradation windows overlap or are unsorted at {t0!r}")
            prev_end = t1
        self._windows = wins

    def _piecewise_finish(self, begin: float, nbytes: float) -> float:
        """Drain ``nbytes`` starting at ``begin`` across rate windows."""
        t = begin
        remaining = float(nbytes)
        rate = self.rate
        for t0, t1, factor in self._windows:  # type: ignore[union-attr]
            if t1 <= t:
                continue
            if t0 > t:
                # Full-rate gap before this window.
                cap = (t0 - t) * rate
                if remaining <= cap:
                    return t + remaining / rate
                remaining -= cap
                t = t0
            degraded = rate * factor
            cap = (t1 - t) * degraded
            if remaining <= cap:
                return t + remaining / degraded
            remaining -= cap
            t = t1
        return t + remaining / rate

    @property
    def available_at(self) -> float:
        """Virtual time at which the server next becomes idle."""
        return max(self._available_at, self.sim.now)

    @property
    def bytes_served(self) -> float:
        return self._bytes_served

    @property
    def transfers(self) -> int:
        return self._transfers

    def busy_until(self, nbytes: float, start: Optional[float] = None) -> float:
        """Completion time a transfer of ``nbytes`` would get, w/o booking."""
        begin = max(self.available_at, self.sim.now if start is None else start)
        if self._windows is None:
            return begin + nbytes / self.rate
        return self._piecewise_finish(begin, nbytes)

    def transfer(self, nbytes: float, start: Optional[float] = None) -> Event:
        """Book a transfer and return the event firing at its completion.

        Parameters
        ----------
        nbytes:
            Payload size; must be >= 0.
        start:
            Earliest virtual time the payload is ready to enter the
            server (default: now).  The transfer begins at
            ``max(start, server free)``.
        """
        return self.sim.timeout_until(self.completion_time(nbytes, start))

    def completion_time(self, nbytes: float, start: Optional[float] = None) -> float:
        """Book a transfer and return its completion *time* (no event)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        begin = max(self.available_at, self.sim.now if start is None else start)
        if self._windows is None:
            finish = begin + nbytes / self.rate
        else:
            finish = self._piecewise_finish(begin, nbytes)
        self._available_at = finish
        self._bytes_served += nbytes
        self._transfers += 1
        if self.sim._trace_on and nbytes > 0:
            self.sim.tracer.span(self.name or "bw", "transfer", begin, finish,
                                 cat="nic", args={"nbytes": nbytes})
        return finish

    def reset(self) -> None:
        """Forget queue state and counters (used between benchmark reps)."""
        self._available_at = 0.0
        self._bytes_served = 0.0
        self._transfers = 0


class TokenBucket:
    """Token-bucket rate limiter (tokens/second with burst capacity)."""

    def __init__(self, sim: "Simulator", rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.sim = sim
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = 0.0

    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def take(self, amount: float) -> Event:
        """Event firing once ``amount`` tokens have been consumed."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        self._refill()
        if amount <= self._tokens:
            self._tokens -= amount
            return self.sim.timeout(0.0)
        deficit = amount - self._tokens
        self._tokens = 0.0
        wait = deficit / self.rate
        self._stamp = self.sim.now + wait
        return self.sim.timeout(wait)

    def take_at(self, amount: float, when: float) -> float:
        """Model-side booking: consume ``amount`` tokens at virtual time
        ``when`` and return the time the tokens are available.

        Unlike :meth:`take` this never creates an event — it is used by
        the transport to gate NIC entry times while costing a message.
        Bookings must be made in non-decreasing ``when`` order per
        bucket; earlier stamps are clamped to the last booking.
        """
        if amount < 0:
            raise ValueError("amount must be >= 0")
        when = max(float(when), self._stamp)
        tokens = min(self.burst,
                     self._tokens + (when - self._stamp) * self.rate)
        if amount <= tokens:
            self._tokens = tokens - amount
            self._stamp = when
            return when
        deficit = amount - tokens
        ready = when + deficit / self.rate
        self._tokens = 0.0
        self._stamp = ready
        return ready

    def reset(self) -> None:
        """Restore a full bucket at time zero (between benchmark reps)."""
        self._tokens = float(self.burst)
        self._stamp = 0.0
