"""Shared-resource models for the DES kernel.

Three resource kinds are provided:

:class:`Resource`
    A counting semaphore with FIFO queuing — used for exclusive access to
    e.g. a GPU copy engine.
:class:`BandwidthResource`
    A FIFO *byte server*: transfers of ``n`` bytes occupy the server for
    ``n / rate`` seconds, back to back.  Used for the per-node NIC, so
    that concurrent off-node senders share injection bandwidth and the
    aggregate drains at exactly ``rate`` bytes/second — the phenomenon
    the max-rate model (paper eq. 2.2) captures analytically.
:class:`TokenBucket`
    A rate limiter admitting ``rate`` tokens/second with a burst bucket,
    used by tests to model paced injection.

Observability: when the owning simulator has an enabled tracer
(:mod:`repro.obs`), every :class:`BandwidthResource` booking emits one
occupancy span on the server's track (``nic[k]``), and a *named*
:class:`Resource` emits ``in_use`` counter samples on every grant and
release — the acquire→release occupancy series.  With the default
``NullTracer`` both sites cost a single cached-boolean branch.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, TYPE_CHECKING

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class Resource:
    """Counting semaphore with FIFO waiters.

    ``acquire()`` returns an event that fires when a slot is granted;
    the holder must call ``release()`` exactly once per grant.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1,
                 name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    def _trace_occupancy(self) -> None:
        self.sim.tracer.counter(self.name, "in_use", self.sim.now,
                                self._in_use)
        if self._waiters:
            self.sim.tracer.counter(self.name, "waiters", self.sim.now,
                                    len(self._waiters))

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def acquire(self) -> Event:
        ev = self.sim.event(name="Resource.acquire")
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        if self.sim._trace_on and self.name:
            self._trace_occupancy()
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError("release() without matching acquire()")
        if self._waiters:
            # Hand the slot directly to the next waiter.
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1
        if self.sim._trace_on and self.name:
            self._trace_occupancy()


class BandwidthResource:
    """A FIFO byte server of fixed ``rate`` bytes/second.

    ``transfer(nbytes)`` reserves the server for ``nbytes / rate`` seconds
    starting when the server frees up, and returns the event firing at the
    transfer's completion time.  Zero-byte transfers complete at the
    current front of the queue without consuming server time.

    The server conserves throughput: the sum of bytes completed over any
    busy interval equals ``rate * interval``, which is what makes
    max-rate injection behaviour emerge from contention.
    """

    def __init__(self, sim: "Simulator", rate: float, name: str = "") -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        self.sim = sim
        self.rate = float(rate)
        self.name = name
        self._available_at: float = 0.0
        self._bytes_served: float = 0.0
        self._transfers: int = 0

    @property
    def available_at(self) -> float:
        """Virtual time at which the server next becomes idle."""
        return max(self._available_at, self.sim.now)

    @property
    def bytes_served(self) -> float:
        return self._bytes_served

    @property
    def transfers(self) -> int:
        return self._transfers

    def busy_until(self, nbytes: float, start: Optional[float] = None) -> float:
        """Completion time a transfer of ``nbytes`` would get, w/o booking."""
        begin = max(self.available_at, self.sim.now if start is None else start)
        return begin + nbytes / self.rate

    def transfer(self, nbytes: float, start: Optional[float] = None) -> Event:
        """Book a transfer and return the event firing at its completion.

        Parameters
        ----------
        nbytes:
            Payload size; must be >= 0.
        start:
            Earliest virtual time the payload is ready to enter the
            server (default: now).  The transfer begins at
            ``max(start, server free)``.
        """
        return self.sim.timeout_until(self.completion_time(nbytes, start))

    def completion_time(self, nbytes: float, start: Optional[float] = None) -> float:
        """Book a transfer and return its completion *time* (no event)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        begin = max(self.available_at, self.sim.now if start is None else start)
        finish = begin + nbytes / self.rate
        self._available_at = finish
        self._bytes_served += nbytes
        self._transfers += 1
        if self.sim._trace_on and nbytes > 0:
            self.sim.tracer.span(self.name or "bw", "transfer", begin, finish,
                                 cat="nic", args={"nbytes": nbytes})
        return finish

    def reset(self) -> None:
        """Forget queue state and counters (used between benchmark reps)."""
        self._available_at = 0.0
        self._bytes_served = 0.0
        self._transfers = 0


class TokenBucket:
    """Token-bucket rate limiter (tokens/second with burst capacity)."""

    def __init__(self, sim: "Simulator", rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.sim = sim
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = 0.0

    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def take(self, amount: float) -> Event:
        """Event firing once ``amount`` tokens have been consumed."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        self._refill()
        if amount <= self._tokens:
            self._tokens -= amount
            return self.sim.timeout(0.0)
        deficit = amount - self._tokens
        self._tokens = 0.0
        wait = deficit / self.rate
        self._stamp = self.sim.now + wait
        return self.sim.timeout(wait)
