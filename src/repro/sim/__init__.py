"""Discrete-event simulation (DES) kernel.

This package provides the simulation substrate on which the simulated MPI
runtime (:mod:`repro.mpi`) executes.  It is a small, deterministic,
generator-coroutine event loop in the style of SimPy:

* :class:`~repro.sim.engine.Simulator` owns a virtual clock and an event
  heap ordered by ``(time, sequence)`` so same-time events fire in a
  deterministic FIFO order.
* Processes are plain Python generators that ``yield`` :class:`Event`
  objects; the engine resumes them with the event's value when it fires.
* :class:`~repro.sim.resources.BandwidthResource` models a FIFO byte
  server (used for NIC injection limits, producing max-rate behaviour
  through contention rather than through a hard-coded formula).

Example
-------
>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> def hello(sim, log):
...     yield sim.timeout(1.5)
...     log.append(sim.now)
>>> log = []
>>> _ = sim.process(hello(sim, log))
>>> sim.run()
1.5
>>> log
[1.5]
"""

from repro.sim.engine import (Simulator, Process, SimulationError,
                              DeadlockError, WatchdogError)
from repro.sim.events import Event, Timeout, AllOf, AnyOf, EventState
from repro.sim.soa import SoATimeline, TickBatch
from repro.sim.resources import BandwidthResource, Resource, TokenBucket
from repro.sim.noise import NoiseModel, NoNoise, LognormalNoise

__all__ = [
    "Simulator",
    "Process",
    "SimulationError",
    "DeadlockError",
    "WatchdogError",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "EventState",
    "SoATimeline",
    "TickBatch",
    "BandwidthResource",
    "Resource",
    "TokenBucket",
    "NoiseModel",
    "NoNoise",
    "LognormalNoise",
]
