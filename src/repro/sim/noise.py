"""Timing-noise models for "measured" simulation runs.

The paper reports timings averaged over 1000 runs with the max taken over
ranks.  Real systems jitter; to make simulated "measurements" behave like
averaged measurements (and to exercise the fitting code on non-exact
data), transports can perturb each message cost with a multiplicative
noise model.  All models are seeded and deterministic.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np


class NoiseModel:
    """Base class: a deterministic stream of multiplicative factors."""

    def factor(self) -> float:  # pragma: no cover - abstract
        """Next multiplicative perturbation (``cost *= factor()``)."""
        raise NotImplementedError

    def perturb(self, cost: float) -> float:
        """Apply the next factor to ``cost``."""
        return cost * self.factor()

    def fork(self, stream: int) -> "NoiseModel":  # pragma: no cover - abstract
        """An independent, deterministic sub-stream (e.g. one per rank)."""
        raise NotImplementedError


class NoNoise(NoiseModel):
    """Identity noise: every factor is exactly 1.0 (default)."""

    def factor(self) -> float:
        return 1.0

    def perturb(self, cost: float) -> float:
        return cost

    def fork(self, stream: int) -> "NoNoise":
        return self


class LognormalNoise(NoiseModel):
    """Multiplicative lognormal jitter with unit mean.

    Factors are ``exp(sigma * z - sigma^2 / 2)`` for standard-normal
    ``z``, so ``E[factor] == 1`` and averaged timings remain unbiased
    estimates of the noiseless cost.

    Parameters
    ----------
    sigma:
        Log-scale standard deviation (0.05–0.2 is typical of the run-to-
        run jitter seen in MPI microbenchmarks).
    seed:
        Root seed; forks derive independent streams via ``spawn``.
    """

    def __init__(self, sigma: float = 0.1, seed: int = 0) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma!r}")
        self.sigma = float(sigma)
        self.seed = int(seed)
        self._rng = np.random.default_rng(np.random.SeedSequence(self.seed))
        self._bias = -0.5 * self.sigma * self.sigma

    def factor(self) -> float:
        if self.sigma == 0.0:
            return 1.0
        z = self._rng.standard_normal()
        return math.exp(self.sigma * z + self._bias)

    def fork(self, stream: int) -> "LognormalNoise":
        child = LognormalNoise(self.sigma, seed=self.seed)
        child._rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(int(stream),))
        )
        return child


def make_noise(sigma: float = 0.0, seed: int = 0) -> NoiseModel:
    """Convenience factory: ``sigma == 0`` yields :class:`NoNoise`."""
    if sigma == 0.0:
        return NoNoise()
    return LognormalNoise(sigma=sigma, seed=seed)
