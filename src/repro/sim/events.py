"""Event primitives for the DES kernel.

An :class:`Event` is the unit of synchronization: processes ``yield``
events and are resumed when the event *fires*.  Events carry a value
(delivered to the resuming generator) and an ok/failed flag (failed events
raise inside the waiting generator).

Events move through three states:

``PENDING``
    Created but not yet scheduled to fire.
``TRIGGERED``
    Scheduled on the simulator heap with a firing time.
``PROCESSED``
    Fired; callbacks have run.  Yielding a processed event resumes the
    process immediately (at the current virtual time) with the stored
    value.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class EventState(enum.Enum):
    """Lifecycle state of an :class:`Event`."""

    PENDING = "pending"
    TRIGGERED = "triggered"
    PROCESSED = "processed"


# hot-path aliases: module globals resolve faster than enum attributes
_TRIGGERED = EventState.TRIGGERED
_PROCESSED = EventState.PROCESSED


class Event:
    """A one-shot occurrence in virtual time.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok", "_state")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        #: callables invoked with this event when it fires
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = EventState.PENDING

    # -- state inspection -------------------------------------------------
    @property
    def state(self) -> EventState:
        return self._state

    @property
    def pending(self) -> bool:
        return self._state is EventState.PENDING

    @property
    def triggered(self) -> bool:
        return self._state is EventState.TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state is EventState.PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once fired)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (only meaningful once fired)."""
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._state is not EventState.PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._value = value
        self._ok = True
        self._state = EventState.TRIGGERED
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire as a failure after ``delay``.

        The exception is raised inside every process waiting on the event.
        """
        if self._state is not EventState.PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self._state = EventState.TRIGGERED
        self.sim._schedule(self, delay)
        return self

    # -- engine hook --------------------------------------------------------
    def _process_callbacks(self) -> None:
        """Run callbacks.  Called exactly once by the simulator loop."""
        self._state = _PROCESSED
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for cb in callbacks:
                cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or self.__class__.__name__
        return f"<{label} state={self._state.value}>"


class Timeout(Event):
    """An event that fires ``delay`` units of virtual time after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        # Timeouts are the engine's hottest allocation: skip the name
        # formatting (repr falls back to the class name) and trigger
        # inline — a fresh event is PENDING by construction, so the
        # succeed() state check is redundant.
        self.sim = sim
        self.name = name
        self.callbacks = []
        self.delay = delay = float(delay)
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        sim._schedule(self, delay)


class _Condition(Event):
    """Base for composite events over a set of child events."""

    __slots__ = ("events", "_n_fired", "_done")

    def __init__(self, sim: "Simulator", events: Sequence[Event],
                 name: str = "") -> None:
        super().__init__(sim, name=name)
        self.events: List[Event] = list(events)
        self._n_fired = 0
        self._done = False
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.processed:
                # Fired before we subscribed: account for it immediately.
                self._child_fired(ev)
            else:
                ev.callbacks.append(self._child_fired)

    def _collect(self) -> List[Any]:
        return [ev.value for ev in self.events if ev.processed and ev.ok]

    def _child_fired(self, event: Event) -> None:
        if self._done:
            return
        if not event.ok:
            self._done = True
            self.fail(event.value)
            return
        self._n_fired += 1
        if self._check():
            self._done = True
            self.succeed(self._collect())

    def _check(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when *all* child events have fired successfully.

    Value is the list of child values in child order.
    """

    __slots__ = ()

    def _check(self) -> bool:
        return self._n_fired == len(self.events)

    def _collect(self) -> List[Any]:
        return [ev.value for ev in self.events]


class AnyOf(_Condition):
    """Fires as soon as *any* child event has fired successfully.

    Value is the list of values of the children fired so far.
    """

    __slots__ = ()

    def _check(self) -> bool:
        return self._n_fired >= 1


def ensure_event(sim: "Simulator", obj: Any) -> Event:
    """Coerce ``obj`` into an :class:`Event` (pass-through for events)."""
    if isinstance(obj, Event):
        return obj
    raise TypeError(
        f"process yielded {obj!r}; processes must yield Event instances"
    )
