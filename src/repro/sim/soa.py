"""Struct-of-arrays pending-event storage for the DES kernel.

The scalar engine keeps one Python object (plus one heap tuple) per
pending event.  For bulk traffic — thousands of link-transit ticks, rate
limiter grants, or sweep timeouts scheduled in one call — that per-event
object churn dominates the wall clock.  :class:`SoATimeline` stores such
batch-scheduled events as parallel numpy arrays instead:

* ``times``  — ``float64`` firing times,
* ``seqs``   — ``int64`` engine sequence numbers (tie-breakers),
* ``events`` — a plain list of payloads, where ``None`` marks an
  *anonymous tick*: an entry that only advances the clock and needs no
  Event object at all.

The arrays are kept sorted by ``(time, seq)`` — the engine's global
firing order — via :func:`numpy.lexsort` at merge time, so draining is a
pointer walk.  Because every batch API requires strictly positive
delays, merged entries are always in the strict future; the engine's
immediate (zero-delay) deque and binary heap retain their existing
roles, and the three structures interleave by comparing heads exactly
as the single-heap reference kernel would.

:class:`TickBatch` is the handle returned by
:meth:`~repro.sim.engine.Simulator.schedule_ticks`: ``n`` anonymous
ticks plus an optional ``completed`` event that fires when the last
tick of the batch does.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

_EMPTY_F64 = np.empty(0, dtype=np.float64)
_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_POS = np.empty(0, dtype=np.intp)


class SoATimeline:
    """Sorted run of pending batch events, stored column-wise.

    Invariants:

    * ``times``/``seqs``/``events`` share one length; entries at index
      ``>= pos`` are pending, entries below are fired.
    * pending entries are sorted ascending by ``(time, seq)``.
    * ``ev_positions`` holds the indices of non-``None`` payloads in
      ascending order; ``ev_ptr`` points at the first not-yet-fired one,
      so "where is the next real Event" is O(1) during drains.
    """

    __slots__ = ("times", "seqs", "events", "pos",
                 "ev_positions", "ev_ptr", "fired")

    def __init__(self) -> None:
        self.times: np.ndarray = _EMPTY_F64
        self.seqs: np.ndarray = _EMPTY_I64
        self.events: List[Any] = []
        self.pos: int = 0
        self.ev_positions: np.ndarray = _EMPTY_POS
        self.ev_ptr: int = 0
        self.fired: int = 0

    def __len__(self) -> int:
        """Number of *pending* (not yet fired) entries."""
        return self.times.size - self.pos

    def merge(self, times: np.ndarray, seqs: np.ndarray,
              events: List[Any]) -> None:
        """Fold a new batch into the pending run, re-sorting by (time, seq).

        One ``lexsort`` per batch (not per event) keeps the amortized
        per-event cost in the hundreds of nanoseconds.
        """
        pos = self.pos
        if self.times.size > pos:
            times = np.concatenate((self.times[pos:], times))
            seqs = np.concatenate((self.seqs[pos:], seqs))
            events = self.events[pos:] + events
        order = np.lexsort((seqs, times))
        self.times = times[order]
        self.seqs = seqs[order]
        self.events = [events[i] for i in order.tolist()]
        self.pos = 0
        self.ev_positions = np.flatnonzero(
            np.fromiter((e is not None for e in self.events),
                        dtype=bool, count=len(self.events)))
        self.ev_ptr = 0

    def head(self) -> Optional[Tuple[float, int]]:
        """``(time, seq)`` of the earliest pending entry, or ``None``."""
        pos = self.pos
        if pos >= self.times.size:
            return None
        return (float(self.times[pos]), int(self.seqs[pos]))

    def clear(self) -> None:
        """Drop all entries (pristine reset)."""
        self.times = _EMPTY_F64
        self.seqs = _EMPTY_I64
        self.events = []
        self.pos = 0
        self.ev_positions = _EMPTY_POS
        self.ev_ptr = 0
        self.fired = 0


class TickBatch:
    """Handle for one :meth:`Simulator.schedule_ticks` call.

    ``n`` anonymous ticks were queued; with ``complete=True`` the
    :attr:`completed` event fires (value: this batch) when the batch's
    last tick does — i.e. at ``now + max(delays)``, ordered against all
    other events by the last tick's sequence number.
    """

    __slots__ = ("sim", "n", "_completed")

    def __init__(self, sim: "Simulator", n: int, complete: bool) -> None:
        self.sim = sim
        self.n = n
        self._completed: Optional[Event] = (
            Event(sim, name="tick-batch") if complete else None)

    @property
    def completed(self) -> Event:
        """The completion event (requires ``complete=True`` at creation)."""
        if self._completed is None:
            raise RuntimeError(
                "this TickBatch has no completion event; pass "
                "schedule_ticks(..., complete=True) to get one")
        return self._completed

    def _complete_now(self) -> None:
        """Engine hook: the batch's last tick just fired."""
        self._completed.succeed(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tracked = self._completed is not None
        return f"<TickBatch n={self.n} completion={'on' if tracked else 'off'}>"
